"""repro — SOS-based verification of inevitability of phase-locking in CP PLLs.

Reproduction of: Ul Asad, H. & Jones, K. D., "Verifying inevitability of
phase-locking in a charge pump phase lock loop using sum of squares
programming", GLSVLSI 2015.

Subpackages
-----------
``repro.polynomial``
    Multivariate polynomial algebra (variables, monomials, calculus, Gram forms).
``repro.sdp``
    Pure numpy/scipy conic SDP solvers (ADMM splitting, alternating projection).
``repro.sos``
    SOS programming layer: constraints, S-procedure, certificate validation.
``repro.hybrid``
    Hybrid dynamical systems (Goebel-Sanfelice-Teel flavour) and simulation.
``repro.pll``
    Charge-pump PLL behavioural and verification models (3rd and 4th order).
``repro.core``
    The paper's contribution: multiple Lyapunov certificates, level-set
    maximisation, bounded advection, escape certificates and the end-to-end
    inevitability verification pipeline.
``repro.analysis``
    Projections, sampling-based validation and falsification utilities.
``repro.scenarios``
    Declarative registry of verification workloads (PLLs, buck converter,
    continuous polynomial systems) consumed by the engine and the CLI.
``repro.engine``
    Parallel verification engine: per-scenario job DAGs over a process pool
    with a persistent content-addressed certificate cache
    (``python -m repro``).
"""

from .exceptions import CertificateError, ModelError, ReproError, VerificationInconclusive

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ModelError",
    "CertificateError",
    "VerificationInconclusive",
    "__version__",
]
