"""Shared containers for the CP PLL verification models.

The *verification model* is the hybrid system of the paper expressed in
normalised difference coordinates (Remark 1): states are the loop-filter
voltage deviations plus the phase difference ``e = (phi_ref - phi_vco)/2pi``,
time is in reference cycles, and all discrete jumps have identity resets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import ModelError
from ..hybrid import HybridSystem
from ..polynomial import Polynomial, Variable, VariableVector
from ..sos import SemialgebraicSet
from ..utils import Interval
from .parameters import PLLParameters
from .scaling import StateScaling

#: Mode names follow the paper: mode1 = (UP=0, DOWN=0), mode2 = (UP=1, DOWN=0),
#: mode3 = (UP=0, DOWN=1).
MODE_IDLE = "mode1"
MODE_PUMP_UP = "mode2"
MODE_PUMP_DOWN = "mode3"
MODE_NAMES = (MODE_IDLE, MODE_PUMP_UP, MODE_PUMP_DOWN)


@dataclass(frozen=True)
class RegionOfInterest:
    """Box in normalised coordinates over which the property is verified.

    ``voltage_bound`` bounds every loop-filter voltage deviation (volts) and
    ``phase_bound`` bounds the phase difference (cycles).  Defaults match the
    axis ranges of the paper's figures (voltages to +-8 V, phase difference to
    +-2 cycles for the third order and +-1 for the fourth order).
    """

    voltage_bound: float = 8.0
    phase_bound: float = 2.0

    def __post_init__(self) -> None:
        if self.voltage_bound <= 0 or self.phase_bound <= 0:
            raise ModelError("region-of-interest bounds must be positive")

    def bounds_for(self, state_names: Sequence[str]) -> List[Tuple[float, float]]:
        bounds = []
        for name in state_names:
            limit = self.phase_bound if name == "e" else self.voltage_bound
            bounds.append((-limit, limit))
        return bounds

    def outer_ellipsoid(self, variables: VariableVector,
                        state_names: Sequence[str],
                        margin: float = 1.0) -> Polynomial:
        """The polynomial whose 0-sublevel set is the outer initial set ``X2``.

        ``sum_i (x_i / r_i)^2 - margin <= 0`` — an axis-aligned ellipsoid
        inscribed in (``margin = 1``) the region-of-interest box.
        """
        poly = Polynomial.constant(variables, -float(margin))
        for i, name in enumerate(state_names):
            limit = self.phase_bound if name == "e" else self.voltage_bound
            xi = Polynomial.from_variable(variables[i], variables)
            poly = poly + xi * xi * (1.0 / (limit * limit))
        return poly

    def contains(self, state: Sequence[float], state_names: Sequence[str],
                 tolerance: float = 1e-9) -> bool:
        for value, (lo, hi) in zip(state, self.bounds_for(state_names)):
            if value < lo - tolerance or value > hi + tolerance:
                return False
        return True


@dataclass
class PLLVerificationModel:
    """A CP PLL hybrid model in normalised difference coordinates.

    Attributes
    ----------
    system:
        The :class:`~repro.hybrid.HybridSystem` with modes ``mode1/2/3``.
    parameters:
        The physical parameter set the model was built from.
    scaling:
        Physical <-> normalised state mapping.
    region:
        The region of interest (state box) used for all S-procedure domains.
    rate_constants:
        Nominal dimensionless rate constants of the normalised dynamics.
    rate_constant_intervals:
        Interval enclosures of the rate constants over the parameter box.
    uncertainty:
        Which constants were modelled as uncertain parameter variables
        (``"none"``, ``"pump"`` or ``"full"``).
    """

    system: HybridSystem
    parameters: PLLParameters
    scaling: StateScaling
    region: RegionOfInterest
    rate_constants: Dict[str, float]
    rate_constant_intervals: Dict[str, Interval]
    uncertainty: str = "pump"

    # ------------------------------------------------------------------
    @property
    def state_variables(self) -> VariableVector:
        return self.system.state_variables

    @property
    def state_names(self) -> Tuple[str, ...]:
        return self.system.state_variables.names

    @property
    def order(self) -> int:
        return self.parameters.order

    @property
    def phase_variable(self) -> Variable:
        return self.system.state_variables[-1]

    def state_bounds(self) -> List[Tuple[float, float]]:
        return self.region.bounds_for(self.state_names)

    def region_box_set(self, name: str = "region") -> SemialgebraicSet:
        """The region-of-interest box as a semialgebraic set."""
        empty = SemialgebraicSet(self.state_variables, name=name)
        return empty.with_box(self.state_bounds())

    def mode_domain(self, mode_name: str) -> SemialgebraicSet:
        """Flow set of a mode intersected with the region of interest."""
        mode = self.system.mode(mode_name)
        return mode.flow_set.intersect(self.region_box_set(name=f"{mode_name}_roi"))

    def outer_set_polynomial(self, margin: float = 1.0) -> Polynomial:
        """Polynomial description of the initial outer set X2 (0-sublevel set)."""
        return self.region.outer_ellipsoid(self.state_variables, self.state_names,
                                           margin=margin)

    def equilibrium(self) -> np.ndarray:
        if self.system.equilibrium is None:
            raise ModelError("verification model has no equilibrium recorded")
        return self.system.equilibrium

    def nominal_fields(self) -> Dict[str, Tuple[Polynomial, ...]]:
        """State-only vector fields at nominal parameter values, per mode."""
        nominal = self.system.nominal_parameters()
        return {mode.name: mode.flow_map_with_parameters(nominal)
                for mode in self.system.modes}

    def describe(self) -> str:
        lines = [
            f"PLLVerificationModel(order={self.order}, uncertainty={self.uncertainty!r})",
            f"  states: {list(self.state_names)}  (normalised, time in reference cycles)",
            f"  region: |v| <= {self.region.voltage_bound} V, |e| <= {self.region.phase_bound} cycles",
            "  rate constants: "
            + ", ".join(f"{k}={v:.4g}" for k, v in self.rate_constants.items()),
        ]
        lines.append(self.system.describe())
        return "\n".join(lines)
