"""Fourth-order CP PLL verification model (states ``v1, v2, v3, e``).

The fourth-order loop filter adds a ripple-suppression section (series R2
into C3) after the main filter node; the VCO is driven by the voltage across
C3.  In normalised difference coordinates the dynamics are

    v1' = a1 (v2 - v1)
    v2' = a2 (v1 - v2) + a23 (v3 - v2) + pump * i_pfd
    v3' = a3 (v2 - v3)
    e'  = -kv * v3

with ``a23 = 1/(R2 C2 f_ref)`` and ``a3 = 1/(R2 C3 f_ref)``.
"""

from __future__ import annotations

from typing import Optional

from .construction import build_pll_hybrid_system
from .model import PLLVerificationModel, RegionOfInterest
from .parameters import PLLParameters
from .scaling import verification_scaling


def default_fourth_order_region() -> RegionOfInterest:
    """Axis ranges of Figures 3 and 5 of the paper."""
    return RegionOfInterest(voltage_bound=8.0, phase_bound=1.0)


def build_fourth_order_model(
    parameters: Optional[PLLParameters] = None,
    region: Optional[RegionOfInterest] = None,
    uncertainty: str = "pump",
    voltage_scale: float = 1.0,
) -> PLLVerificationModel:
    """Build the fourth-order verification model (see :func:`build_third_order_model`)."""
    parameters = parameters or PLLParameters.fourth_order_paper()
    if parameters.order != 4:
        raise ValueError(f"expected fourth-order parameters, got order {parameters.order}")
    region = region or default_fourth_order_region()
    system, nominal, intervals = build_pll_hybrid_system(
        parameters, region, uncertainty=uncertainty, voltage_scale=voltage_scale,
        name="cp_pll_fourth_order",
    )
    return PLLVerificationModel(
        system=system,
        parameters=parameters,
        scaling=verification_scaling(parameters, voltage_scale=voltage_scale),
        region=region,
        rate_constants=nominal,
        rate_constant_intervals=intervals,
        uncertainty=uncertainty,
    )
