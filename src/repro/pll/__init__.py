"""Charge-pump PLL models: Table 1 parameters, behavioural blocks, hybrid models."""

from .parameters import PLLParameters
from .scaling import StateScaling, normalized_rate_constants, verification_scaling
from .model import (
    MODE_IDLE,
    MODE_NAMES,
    MODE_PUMP_DOWN,
    MODE_PUMP_UP,
    PLLVerificationModel,
    RegionOfInterest,
)
from .construction import build_pll_hybrid_system, rate_constant_intervals
from .third_order import build_third_order_model, default_third_order_region
from .fourth_order import build_fourth_order_model, default_fourth_order_region
from .components import (
    ChargePump,
    FrequencyDivider,
    LoopFilter,
    PhaseFrequencyDetector,
    ReferenceOscillator,
    VoltageControlledOscillator,
)
from .behavioral import BehavioralPLLSimulator, BehavioralTrace

__all__ = [
    "PLLParameters",
    "StateScaling",
    "verification_scaling",
    "normalized_rate_constants",
    "RegionOfInterest",
    "PLLVerificationModel",
    "MODE_IDLE",
    "MODE_PUMP_UP",
    "MODE_PUMP_DOWN",
    "MODE_NAMES",
    "build_pll_hybrid_system",
    "rate_constant_intervals",
    "build_third_order_model",
    "default_third_order_region",
    "build_fourth_order_model",
    "default_fourth_order_region",
    "PhaseFrequencyDetector",
    "ChargePump",
    "LoopFilter",
    "VoltageControlledOscillator",
    "FrequencyDivider",
    "ReferenceOscillator",
    "BehavioralPLLSimulator",
    "BehavioralTrace",
]
