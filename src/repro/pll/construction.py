"""Shared machinery for building CP PLL verification hybrid models.

Both the third- and fourth-order builders produce the same structure:

* three PFD modes (``mode1`` idle, ``mode2`` pump up, ``mode3`` pump down)
  whose affine dynamics differ only in the charge-pump term;
* flow sets expressed through the sign of the phase difference ``e``;
* identity-reset transitions between ``mode1`` and the pumping modes
  (Remark 1 of the paper: using the phase *difference* as a state makes all
  jump maps identities);
* optional uncertain parameters (the dimensionless rate constants) with
  interval bounds derived from Table 1 by interval arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ModelError
from ..hybrid import HybridSystem, Mode, Transition
from ..polynomial import Polynomial, Variable, VariableVector, make_variables
from ..sos import SemialgebraicSet
from ..utils import Interval
from .model import MODE_IDLE, MODE_PUMP_DOWN, MODE_PUMP_UP, RegionOfInterest
from .parameters import PLLParameters

UNCERTAINTY_MODES = ("none", "pump", "full")


def rate_constant_intervals(parameters: PLLParameters,
                            voltage_scale: float = 1.0) -> Dict[str, Interval]:
    """Interval enclosures of the dimensionless rate constants.

    Uses plain interval arithmetic over the Table 1 parameter boxes, which is
    exact here because every constant is a product/quotient of independent
    parameters.
    """
    f_ref = parameters.f_ref
    intervals = {
        "a1": 1.0 / (parameters.r * parameters.c1 * f_ref),
        "a2": 1.0 / (parameters.r * parameters.c2 * f_ref),
        "pump": parameters.i_p / (parameters.c2 * f_ref) / voltage_scale,
        "kv": parameters.k_vco * voltage_scale / (parameters.divider * f_ref),
    }
    if parameters.order == 4:
        intervals["a23"] = 1.0 / (parameters.r2 * parameters.c2 * f_ref)
        intervals["a3"] = 1.0 / (parameters.r2 * parameters.c3 * f_ref)
    return intervals


def _resolve_constants(
    intervals: Dict[str, Interval],
    uncertainty: str,
    full_vars: Dict[str, Variable],
) -> Dict[str, object]:
    """Map each rate constant to either a float (nominal) or a parameter Variable."""
    if uncertainty not in UNCERTAINTY_MODES:
        raise ModelError(
            f"unknown uncertainty mode {uncertainty!r}; expected one of {UNCERTAINTY_MODES}"
        )
    resolved: Dict[str, object] = {}
    for name, interval in intervals.items():
        uncertain = (
            uncertainty == "full" and not interval.is_degenerate()
        ) or (uncertainty == "pump" and name == "pump" and not interval.is_degenerate())
        resolved[name] = full_vars[name] if uncertain else interval.center
    return resolved


def _term(variables: VariableVector, constant: object, expression: Polynomial) -> Polynomial:
    """``constant * expression`` where ``constant`` is a float or a parameter Variable."""
    if isinstance(constant, Variable):
        return Polynomial.from_variable(constant, variables) * expression
    return expression * float(constant)


def build_pll_hybrid_system(
    parameters: PLLParameters,
    region: RegionOfInterest,
    uncertainty: str = "pump",
    voltage_scale: float = 1.0,
    name: Optional[str] = None,
) -> Tuple[HybridSystem, Dict[str, float], Dict[str, Interval]]:
    """Construct the normalised difference-coordinate hybrid system.

    Returns ``(system, nominal_rate_constants, rate_constant_intervals)``.
    """
    intervals = rate_constant_intervals(parameters, voltage_scale=voltage_scale)
    nominal = {name_: interval.center for name_, interval in intervals.items()}

    if parameters.order == 3:
        state_names = ("v1", "v2", "e")
    else:
        state_names = ("v1", "v2", "v3", "e")
    state_vars = VariableVector(make_variables(*state_names))

    # Parameter variables (only those actually used become part of the system).
    param_var_pool = {key: Variable(f"u_{key}") for key in intervals}
    constants = _resolve_constants(intervals, uncertainty, param_var_pool)
    used_params = [param_var_pool[key] for key in intervals
                   if isinstance(constants[key], Variable)]
    param_vars = VariableVector(used_params)
    param_intervals = {param_var_pool[key]: intervals[key]
                       for key in intervals if isinstance(constants[key], Variable)}

    all_vars = state_vars.union(param_vars)
    x = {name_: Polynomial.from_variable(state_vars[i], all_vars)
         for i, name_ in enumerate(state_names)}

    def drift_common() -> List[Polynomial]:
        """Charge-pump-free part of the vector field (identical in every mode)."""
        if parameters.order == 3:
            dv1 = _term(all_vars, constants["a1"], x["v2"] - x["v1"])
            dv2 = _term(all_vars, constants["a2"], x["v1"] - x["v2"])
            de = -_term(all_vars, constants["kv"], x["v2"])
            return [dv1, dv2, de]
        dv1 = _term(all_vars, constants["a1"], x["v2"] - x["v1"])
        dv2 = (_term(all_vars, constants["a2"], x["v1"] - x["v2"])
               + _term(all_vars, constants["a23"], x["v3"] - x["v2"]))
        dv3 = _term(all_vars, constants["a3"], x["v2"] - x["v3"])
        de = -_term(all_vars, constants["kv"], x["v3"])
        return [dv1, dv2, dv3, de]

    def with_pump(sign: float) -> Tuple[Polynomial, ...]:
        field = drift_common()
        pump_term = _term(all_vars, constants["pump"], Polynomial.constant(all_vars, sign))
        field[1] = field[1] + pump_term
        return tuple(field)

    phase = Polynomial.from_variable(state_vars[len(state_names) - 1], state_vars)
    pb = region.phase_bound

    idle_set = SemialgebraicSet(
        state_vars,
        inequalities=(pb - phase, phase + pb),
        name=f"{MODE_IDLE}_flowset",
    )
    up_set = SemialgebraicSet(
        state_vars,
        inequalities=(phase, pb - phase),
        name=f"{MODE_PUMP_UP}_flowset",
    )
    down_set = SemialgebraicSet(
        state_vars,
        inequalities=(-phase, phase + pb),
        name=f"{MODE_PUMP_DOWN}_flowset",
    )

    modes = (
        Mode(name=MODE_IDLE, index=1, state_variables=state_vars,
             flow_map=tuple(drift_common()), flow_set=idle_set,
             parameter_variables=param_vars, contains_equilibrium=True),
        Mode(name=MODE_PUMP_UP, index=2, state_variables=state_vars,
             flow_map=with_pump(+1.0), flow_set=up_set,
             parameter_variables=param_vars),
        Mode(name=MODE_PUMP_DOWN, index=3, state_variables=state_vars,
             flow_map=with_pump(-1.0), flow_set=down_set,
             parameter_variables=param_vars),
    )

    # Identity-reset transitions; guards over-approximate the PFD edge events in
    # difference coordinates (see DESIGN.md).  Triggers give the simulator an
    # executable abstraction.
    up_guard = SemialgebraicSet(state_vars, inequalities=(phase, pb - phase),
                                name="guard_e_nonneg")
    down_guard = SemialgebraicSet(state_vars, inequalities=(-phase, phase + pb),
                                  name="guard_e_nonpos")
    transitions = (
        Transition(source=MODE_IDLE, target=MODE_PUMP_UP, state_variables=state_vars,
                   guard_set=up_guard, trigger=phase),
        Transition(source=MODE_IDLE, target=MODE_PUMP_DOWN, state_variables=state_vars,
                   guard_set=down_guard, trigger=-phase),
        Transition(source=MODE_PUMP_UP, target=MODE_IDLE, state_variables=state_vars,
                   guard_set=down_guard, trigger=-phase),
        Transition(source=MODE_PUMP_DOWN, target=MODE_IDLE, state_variables=state_vars,
                   guard_set=up_guard, trigger=phase),
    )

    system = HybridSystem(
        name=name or f"cp_pll_order{parameters.order}",
        state_variables=state_vars,
        modes=modes,
        transitions=transitions,
        parameter_variables=param_vars,
        parameter_intervals=param_intervals,
        equilibrium=np.zeros(len(state_names)),
    )
    return system, nominal, intervals
