"""Event-driven behavioural simulation of the full CP PLL.

Unlike the *verification model* (difference coordinates, sign-of-``e`` flow
sets), the behavioural simulator keeps both phases explicitly and emulates the
real tri-state PFD edge logic, which is the ground truth the paper's hybrid
abstraction stands for.  It is used to

* cross-validate the verification pipeline (trajectories must enter and stay
  in the computed attractive invariant, the Lyapunov certificates must be
  non-increasing along projected trajectories), and
* drive the example applications (start-up and lock-recovery studies).

Time is normalised to reference cycles so a simulation of a few hundred
cycles is instantaneous regardless of the physical reference frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.integrate import solve_ivp

from ..exceptions import ModelError
from .components import (
    ChargePump,
    FrequencyDivider,
    LoopFilter,
    PhaseFrequencyDetector,
    ReferenceOscillator,
    VoltageControlledOscillator,
)
from .parameters import PLLParameters


@dataclass
class BehavioralTrace:
    """Sampled output of a behavioural simulation (normalised time, cycles, volts)."""

    times: np.ndarray
    voltages: np.ndarray           # shape (m, filter order)
    phase_error: np.ndarray        # unwrapped (phi_ref - phi_div) in cycles
    pfd_state: np.ndarray          # -1 / 0 / +1 per sample
    lock_voltage: float
    parameter_values: Dict[str, float]

    @property
    def control_voltage(self) -> np.ndarray:
        return self.voltages[:, -1] if self.voltages.shape[1] == 3 else self.voltages[:, 1]

    def final_phase_error(self) -> float:
        return float(self.phase_error[-1])

    def to_difference_coordinates(self) -> np.ndarray:
        """Project onto the verification-model states ``(v_i - v_lock, ..., e)``."""
        deviations = self.voltages - self.lock_voltage
        return np.column_stack([deviations, self.phase_error])

    def settled(self, voltage_tolerance: float = 5e-2, phase_tolerance: float = 5e-2,
                window: int = 50) -> bool:
        """True when the tail of the trace is within tolerance of lock."""
        if self.times.shape[0] < window:
            return False
        tail_v = np.abs(self.voltages[-window:, :] - self.lock_voltage)
        tail_e = np.abs(self.phase_error[-window:])
        return bool(tail_v.max() <= voltage_tolerance and tail_e.max() <= phase_tolerance)


class BehavioralPLLSimulator:
    """Event-driven simulator of the full CP PLL behavioural model."""

    def __init__(self, parameters: PLLParameters,
                 values: Optional[Dict[str, float]] = None):
        self.parameters = parameters
        self.values = dict(values) if values is not None else parameters.nominal()
        missing = set(parameters.named_intervals()) - set(self.values)
        if missing:
            raise ModelError(f"missing parameter values: {sorted(missing)}")

        p = self.values
        self.reference = ReferenceOscillator(p["f_ref"])
        self.charge_pump = ChargePump(p["i_p"])
        if parameters.order == 3:
            self.loop_filter = LoopFilter(c1=p["c1"], c2=p["c2"], r=p["r"])
        else:
            self.loop_filter = LoopFilter(c1=p["c1"], c2=p["c2"], r=p["r"],
                                          c3=p["c3"], r2=p["r2"])
        self.vco = VoltageControlledOscillator(k_vco=p["k_vco"], f_free=parameters.f_free)
        self.divider = FrequencyDivider(p["divider"])

    # ------------------------------------------------------------------
    @property
    def lock_voltage(self) -> float:
        return self.vco.control_for_frequency(self.values["divider"] * self.values["f_ref"])

    def _rhs(self, pump_sign: int):
        """Normalised-time right-hand side for ``y = [theta_ref, theta_div, v...]``."""
        f_ref = self.values["f_ref"]
        pump_current = self.charge_pump.current(pump_sign)

        def rhs(tau, y):
            voltages = y[2:]
            control = self.loop_filter.control_voltage(voltages)
            f_div = self.divider.divided_frequency(self.vco.frequency(control))
            dvolt = self.loop_filter.derivatives(voltages, pump_current) / f_ref
            return np.concatenate([[1.0, f_div / f_ref], dvolt])

        return rhs

    # ------------------------------------------------------------------
    def simulate(
        self,
        initial_voltages: Sequence[float],
        initial_phase_error: float = 0.0,
        duration_cycles: float = 400.0,
        max_step_cycles: float = 0.05,
        record_stride: int = 1,
    ) -> BehavioralTrace:
        """Simulate for ``duration_cycles`` reference cycles.

        ``initial_phase_error`` (cycles) is applied by offsetting the divider
        phase; ``initial_voltages`` are the physical filter voltages.
        """
        order = self.loop_filter.order
        initial_voltages = np.asarray(initial_voltages, dtype=float)
        if initial_voltages.shape[0] != order:
            raise ModelError(f"expected {order} initial voltages, got {initial_voltages.shape[0]}")

        pfd = PhaseFrequencyDetector()
        theta_ref = 0.0
        theta_div = float(np.clip(-initial_phase_error, 0.0, 0.999999)) \
            if initial_phase_error <= 0 else 0.0
        # A positive initial phase error means the reference leads: start the
        # reference part-way through its cycle instead.
        if initial_phase_error > 0:
            theta_ref = float(np.clip(initial_phase_error, 0.0, 0.999999))

        # Unwrapped cycle counters used to reconstruct the continuous phase error.
        ref_cycles = 0.0
        div_cycles = 0.0

        times: List[float] = []
        volt_samples: List[np.ndarray] = []
        error_samples: List[float] = []
        pfd_samples: List[int] = []

        y = np.concatenate([[theta_ref, theta_div], initial_voltages])
        tau = 0.0

        def ref_edge(t, state):
            return state[0] - 1.0

        def div_edge(t, state):
            return state[1] - 1.0

        ref_edge.terminal = True
        ref_edge.direction = 1.0
        div_edge.terminal = True
        div_edge.direction = 1.0

        while tau < duration_cycles - 1e-12:
            rhs = self._rhs(pfd.output)
            solution = solve_ivp(
                rhs, (tau, duration_cycles), y, events=[ref_edge, div_edge],
                max_step=max_step_cycles, rtol=1e-9, atol=1e-12,
            )
            if not solution.success:  # pragma: no cover
                raise ModelError(f"behavioural integration failed: {solution.message}")

            seg_times = solution.t[::record_stride]
            seg_states = solution.y.T[::record_stride]
            for t_k, y_k in zip(seg_times, seg_states):
                times.append(float(t_k))
                volt_samples.append(y_k[2:].copy())
                error_samples.append((ref_cycles + y_k[0]) - (div_cycles + y_k[1]))
                pfd_samples.append(pfd.output)

            y = solution.y[:, -1].copy()
            tau = float(solution.t[-1])

            if solution.status != 1:
                break
            ref_fired = solution.t_events[0].size > 0
            div_fired = solution.t_events[1].size > 0
            if ref_fired:
                ref_cycles += 1.0
                y[0] -= 1.0
                pfd.on_reference_edge()
            if div_fired:
                div_cycles += 1.0
                y[1] -= 1.0
                pfd.on_divider_edge()

        return BehavioralTrace(
            times=np.array(times),
            voltages=np.array(volt_samples),
            phase_error=np.array(error_samples),
            pfd_state=np.array(pfd_samples),
            lock_voltage=self.lock_voltage,
            parameter_values=dict(self.values),
        )

    # ------------------------------------------------------------------
    def simulate_from_difference_state(self, difference_state: Sequence[float],
                                       duration_cycles: float = 400.0,
                                       **kwargs) -> BehavioralTrace:
        """Simulate from a verification-model state ``(v deviations..., e)``."""
        difference_state = np.asarray(difference_state, dtype=float)
        order = self.loop_filter.order
        if difference_state.shape[0] != order + 1:
            raise ModelError(
                f"expected {order + 1} difference-coordinate states, "
                f"got {difference_state.shape[0]}"
            )
        voltages = difference_state[:order] + self.lock_voltage
        return self.simulate(voltages, initial_phase_error=float(difference_state[-1]),
                             duration_cycles=duration_cycles, **kwargs)
