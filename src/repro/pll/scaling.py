"""Normalisation between physical and verification coordinates.

The paper normalises phases by ``2*pi``; this module extends that to a full
nondimensionalisation so the SOS programs see well-conditioned numbers:

* **time** is measured in reference cycles: ``tau = t * f_ref``;
* **phases** are measured in cycles (i.e. divided by ``2*pi``), so the phase
  difference state ``e = (phi_ref - phi_vco) / 2*pi``;
* **voltages** are deviations from the locked control voltage, optionally
  divided by a voltage scale.

The mapping is an invertible affine change of variables, so certificates
computed in normalised coordinates translate back to physical coordinates
exactly (their level sets map through the same affine map).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..exceptions import ModelError
from .parameters import PLLParameters


@dataclass(frozen=True)
class StateScaling:
    """Affine map between physical states and normalised verification states.

    ``x_norm = (x_phys - offset) / scale`` componentwise, and time is
    multiplied by ``time_scale`` (``tau = t * time_scale``).
    """

    state_names: Tuple[str, ...]
    offset: Tuple[float, ...]
    scale: Tuple[float, ...]
    time_scale: float

    def __post_init__(self) -> None:
        if not (len(self.state_names) == len(self.offset) == len(self.scale)):
            raise ModelError("scaling vectors must have matching lengths")
        if any(s <= 0 for s in self.scale):
            raise ModelError("state scales must be strictly positive")
        if self.time_scale <= 0:
            raise ModelError("time scale must be strictly positive")

    @property
    def num_states(self) -> int:
        return len(self.state_names)

    # ------------------------------------------------------------------
    def to_normalized(self, physical: Sequence[float]) -> np.ndarray:
        physical = np.asarray(physical, dtype=float)
        return (physical - np.array(self.offset)) / np.array(self.scale)

    def to_physical(self, normalized: Sequence[float]) -> np.ndarray:
        normalized = np.asarray(normalized, dtype=float)
        return normalized * np.array(self.scale) + np.array(self.offset)

    def time_to_normalized(self, t_seconds: float) -> float:
        return t_seconds * self.time_scale

    def time_to_physical(self, tau: float) -> float:
        return tau / self.time_scale

    def rate_to_normalized(self, rate_physical: Sequence[float]) -> np.ndarray:
        """Convert a physical time-derivative vector to normalised units."""
        rate_physical = np.asarray(rate_physical, dtype=float)
        return rate_physical / (np.array(self.scale) * self.time_scale)

    def describe(self) -> str:
        rows = ", ".join(
            f"{name}: (x-{off:g})/{sc:g}"
            for name, off, sc in zip(self.state_names, self.offset, self.scale)
        )
        return f"StateScaling(tau = t*{self.time_scale:g}; {rows})"


def verification_scaling(parameters: PLLParameters, voltage_scale: float = 1.0) -> StateScaling:
    """The scaling used by the verification models.

    Voltages are shifted by the lock voltage and divided by ``voltage_scale``
    (default 1 V — the paper's figures are in volts); the phase difference is
    already dimensionless and unshifted; time is in reference cycles.
    """
    v_lock = parameters.lock_voltage()
    if parameters.order == 3:
        names = ("v1", "v2", "e")
        offsets = (v_lock, v_lock, 0.0)
        scales = (voltage_scale, voltage_scale, 1.0)
    else:
        names = ("v1", "v2", "v3", "e")
        offsets = (v_lock, v_lock, v_lock, 0.0)
        scales = (voltage_scale, voltage_scale, voltage_scale, 1.0)
    return StateScaling(
        state_names=names,
        offset=offsets,
        scale=scales,
        time_scale=parameters.f_ref.center,
    )


def normalized_rate_constants(parameters: PLLParameters,
                              values: Dict[str, float] | None = None) -> Dict[str, float]:
    """Dimensionless rate constants of the normalised dynamics.

    Keys: ``a1 = 1/(R C1 f_ref)``, ``a2 = 1/(R C2 f_ref)``, ``pump = Ip/(C2 f_ref)``,
    ``kv = K_vco/(N f_ref)`` and for order 4 additionally ``a23 = 1/(R2 C2 f_ref)``,
    ``a3 = 1/(R2 C3 f_ref)``.  All are O(1)-O(10) for the paper's parameters,
    which is what keeps the SOS Gram matrices well conditioned.
    """
    p = values or parameters.nominal()
    f_ref = p["f_ref"]
    constants = {
        "a1": 1.0 / (p["r"] * p["c1"] * f_ref),
        "a2": 1.0 / (p["r"] * p["c2"] * f_ref),
        "pump": p["i_p"] / (p["c2"] * f_ref),
        "kv": p["k_vco"] / (p["divider"] * f_ref),
    }
    if parameters.order == 4:
        constants["a23"] = 1.0 / (p["r2"] * p["c2"] * f_ref)
        constants["a3"] = 1.0 / (p["r2"] * p["c3"] * f_ref)
    return constants
