"""Third-order CP PLL verification model (states ``v1, v2, e``).

This is the system of equation (3) of the paper after the change of
variables of Remark 1 (phase difference as a state, identity jump maps) and
the normalisation of :mod:`repro.pll.scaling`:

    v1' = a1 (v2 - v1)
    v2' = a2 (v1 - v2) + pump * i_pfd          i_pfd in {0, +1, -1}
    e'  = -kv * v2

with the three PFD modes selecting ``i_pfd`` and the dimensionless constants
``a1 = 1/(R C1 f_ref)``, ``a2 = 1/(R C2 f_ref)``, ``pump = Ip/(C2 f_ref)``,
``kv = K_vco/(N f_ref)``.
"""

from __future__ import annotations

from typing import Optional

from .construction import build_pll_hybrid_system
from .model import PLLVerificationModel, RegionOfInterest
from .parameters import PLLParameters
from .scaling import verification_scaling


def default_third_order_region() -> RegionOfInterest:
    """Axis ranges of Figures 2 and 4 of the paper."""
    return RegionOfInterest(voltage_bound=8.0, phase_bound=2.0)


def build_third_order_model(
    parameters: Optional[PLLParameters] = None,
    region: Optional[RegionOfInterest] = None,
    uncertainty: str = "pump",
    voltage_scale: float = 1.0,
) -> PLLVerificationModel:
    """Build the third-order verification model.

    Parameters
    ----------
    parameters:
        Physical parameter set; defaults to the paper's Table 1 column.
    region:
        Region of interest in normalised coordinates; defaults to the paper's
        figure ranges.
    uncertainty:
        ``"none"`` (nominal constants), ``"pump"`` (charge-pump rate uncertain,
        the dominant Table 1 interval) or ``"full"`` (all rate constants
        uncertain).
    voltage_scale:
        Volts per normalised voltage unit (1.0 keeps voltages in volts).
    """
    parameters = parameters or PLLParameters.third_order_paper()
    if parameters.order != 3:
        raise ValueError(f"expected third-order parameters, got order {parameters.order}")
    region = region or default_third_order_region()
    system, nominal, intervals = build_pll_hybrid_system(
        parameters, region, uncertainty=uncertainty, voltage_scale=voltage_scale,
        name="cp_pll_third_order",
    )
    return PLLVerificationModel(
        system=system,
        parameters=parameters,
        scaling=verification_scaling(parameters, voltage_scale=voltage_scale),
        region=region,
        rate_constants=nominal,
        rate_constant_intervals=intervals,
        uncertainty=uncertainty,
    )
