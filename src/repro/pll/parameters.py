"""Charge-pump PLL parameter sets (Table 1 of the paper).

Every circuit parameter is an :class:`~repro.utils.intervals.Interval` because
the paper verifies the property for *ranges* of component values (process
variation).  The two classmethods reproduce the third- and fourth-order
columns of Table 1 exactly; custom designs can be built directly.

Units are SI throughout this module (farads, ohms, amperes, hertz).  The
verification models are built in normalised coordinates — see
:mod:`repro.pll.scaling`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import ModelError
from ..utils import Interval


@dataclass(frozen=True)
class PLLParameters:
    """Component values of a single-path third/fourth order CP PLL.

    Attributes
    ----------
    order:
        3 for the C1-R-C2 loop filter, 4 when the additional R2-C3 section
        is present.
    c1, c2, c3:
        Loop-filter capacitances (farads); ``c3`` only for order 4.
    r, r2:
        Loop-filter resistances (ohms); ``r2`` only for order 4.
    f_ref:
        Reference frequency (hertz).
    k_vco:
        VCO gain (hertz per volt).
    i_p:
        Charge-pump current magnitude (amperes).
    divider:
        Feedback divider ratio N.
    f_free:
        VCO free-running frequency (hertz).  Not listed in Table 1; it fixes
        where the locked control voltage sits and defaults to a value giving a
        modest positive lock voltage (see :meth:`lock_voltage`).
    """

    order: int
    c1: Interval
    c2: Interval
    r: Interval
    f_ref: Interval
    k_vco: Interval
    i_p: Interval
    divider: Interval
    c3: Optional[Interval] = None
    r2: Optional[Interval] = None
    f_free: float = 0.0
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.order not in (3, 4):
            raise ModelError(f"only third and fourth order PLLs are supported, got {self.order}")
        if self.order == 4 and (self.c3 is None or self.r2 is None):
            raise ModelError("fourth-order parameters require c3 and r2")
        if self.order == 3 and (self.c3 is not None or self.r2 is not None):
            raise ModelError("third-order parameters must not define c3 or r2")
        for label, interval in self.named_intervals().items():
            if interval.lower <= 0:
                raise ModelError(f"parameter {label} must be strictly positive, got {interval}")

    # ------------------------------------------------------------------
    # Table 1 of the paper
    # ------------------------------------------------------------------
    @classmethod
    def third_order_paper(cls) -> "PLLParameters":
        """Third-order column of Table 1."""
        return cls(
            order=3,
            c1=Interval(1.98e-12, 2.2e-12),
            c2=Interval(6.1e-12, 6.4e-12),
            r=Interval(7.8e3, 8.2e3),
            f_ref=Interval.point(27e6),
            k_vco=Interval.point(27e9),          # 27e3 MHz per volt
            i_p=Interval(495e-6, 505e-6),
            divider=Interval(198.0, 202.0),
            name="third_order_paper",
        )

    @classmethod
    def fourth_order_paper(cls) -> "PLLParameters":
        """Fourth-order column of Table 1."""
        return cls(
            order=4,
            c1=Interval(29e-12, 31e-12),
            c2=Interval(3.2e-12, 3.4e-12),
            c3=Interval(1.8e-12, 2.2e-12),
            r=Interval(48e3, 52e3),
            r2=Interval(7e3, 9e3),
            f_ref=Interval.point(5e6),
            k_vco=Interval.point(5e6),           # 5 MHz per volt
            i_p=Interval(395e-6, 405e-6),
            divider=Interval(495.0, 502.0),
            name="fourth_order_paper",
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def named_intervals(self) -> Dict[str, Interval]:
        intervals = {
            "c1": self.c1,
            "c2": self.c2,
            "r": self.r,
            "f_ref": self.f_ref,
            "k_vco": self.k_vco,
            "i_p": self.i_p,
            "divider": self.divider,
        }
        if self.order == 4:
            intervals["c3"] = self.c3
            intervals["r2"] = self.r2
        return intervals

    def nominal(self) -> Dict[str, float]:
        """Interval mid-points."""
        return {name: interval.center for name, interval in self.named_intervals().items()}

    def sample(self, rng: np.random.Generator) -> Dict[str, float]:
        """A random corner-to-corner parameter draw (for Monte-Carlo validation)."""
        return {name: float(interval.sample(rng, 1)[0])
                for name, interval in self.named_intervals().items()}

    def vertices(self) -> Iterator[Dict[str, float]]:
        """All corner combinations of the non-degenerate intervals."""
        names = list(self.named_intervals())
        intervals = [self.named_intervals()[n] for n in names]

        def recurse(idx: int, current: Dict[str, float]):
            if idx == len(names):
                yield dict(current)
                return
            interval = intervals[idx]
            values = [interval.lower] if interval.is_degenerate() else [interval.lower,
                                                                        interval.upper]
            for value in values:
                current[names[idx]] = value
                yield from recurse(idx + 1, current)

        yield from recurse(0, {})

    # ------------------------------------------------------------------
    # Derived quantities (nominal values)
    # ------------------------------------------------------------------
    def lock_frequency(self) -> float:
        """Nominal VCO frequency in lock: ``N * f_ref``."""
        nominal = self.nominal()
        return nominal["divider"] * nominal["f_ref"]

    def lock_voltage(self) -> float:
        """Nominal control voltage in lock: ``(N f_ref - f_free) / K_vco``."""
        nominal = self.nominal()
        return (self.lock_frequency() - self.f_free) / nominal["k_vco"]

    def control_voltage_state(self) -> str:
        """Which filter voltage drives the VCO (``v2`` for order 3, ``v3`` for order 4)."""
        return "v2" if self.order == 3 else "v3"

    def averaged_state_matrix(self, values: Optional[Dict[str, float]] = None) -> np.ndarray:
        """State matrix of the *averaged* (phase-error proportional) linear model.

        States are ``(v1, v2, e)`` for order 3 and ``(v1, v2, v3, e)`` for
        order 4, with voltages as deviations from lock and the phase error
        ``e`` in cycles.  Used to sanity-check loop stability and as a
        baseline linear analysis.
        """
        p = values or self.nominal()
        if self.order == 3:
            return np.array([
                [-1.0 / (p["r"] * p["c1"]), 1.0 / (p["r"] * p["c1"]), 0.0],
                [1.0 / (p["r"] * p["c2"]), -1.0 / (p["r"] * p["c2"]), p["i_p"] / p["c2"]],
                [0.0, -p["k_vco"] / p["divider"], 0.0],
            ])
        return np.array([
            [-1.0 / (p["r"] * p["c1"]), 1.0 / (p["r"] * p["c1"]), 0.0, 0.0],
            [1.0 / (p["r"] * p["c2"]),
             -1.0 / (p["r"] * p["c2"]) - 1.0 / (p["r2"] * p["c2"]),
             1.0 / (p["r2"] * p["c2"]), p["i_p"] / p["c2"]],
            [0.0, 1.0 / (p["r2"] * p["c3"]), -1.0 / (p["r2"] * p["c3"]), 0.0],
            [0.0, 0.0, -p["k_vco"] / p["divider"], 0.0],
        ])

    def is_averaged_model_stable(self, values: Optional[Dict[str, float]] = None) -> bool:
        eigenvalues = np.linalg.eigvals(self.averaged_state_matrix(values))
        return bool(np.all(eigenvalues.real < 0.0))

    # ------------------------------------------------------------------
    def table_rows(self) -> List[Tuple[str, str]]:
        """Human-readable (parameter, range) rows reproducing Table 1 formatting."""
        def fmt(value: float, scale: float, unit: str) -> str:
            return f"{value / scale:g}{unit}"

        rows = [
            ("C1", f"[{fmt(self.c1.lower, 1e-12, '')} {fmt(self.c1.upper, 1e-12, '')}] pF"),
            ("C2", f"[{fmt(self.c2.lower, 1e-12, '')} {fmt(self.c2.upper, 1e-12, '')}] pF"),
        ]
        if self.order == 4:
            rows.append(("C3", f"[{fmt(self.c3.lower, 1e-12, '')} {fmt(self.c3.upper, 1e-12, '')}] pF"))
        rows.append(("R", f"[{fmt(self.r.lower, 1e3, '')} {fmt(self.r.upper, 1e3, '')}] kOhm"))
        if self.order == 4:
            rows.append(("R2", f"[{fmt(self.r2.lower, 1e3, '')} {fmt(self.r2.upper, 1e3, '')}] kOhm"))
        rows.extend([
            ("f_ref", f"{self.f_ref.center / 1e6:g} MHz"),
            ("K0", f"{self.k_vco.center / 1e6:g} MHz/V"),
            ("Ip", f"[{self.i_p.lower * 1e6:g} {self.i_p.upper * 1e6:g}] uA"),
            ("N", f"[{self.divider.lower:g} {self.divider.upper:g}]"),
        ])
        return rows

    def describe(self) -> str:
        rows = "\n".join(f"  {name:6s} {value}" for name, value in self.table_rows())
        return f"PLLParameters({self.name!r}, order={self.order})\n{rows}"
