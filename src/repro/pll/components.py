"""Behavioural component models of the charge-pump PLL.

These classes model the blocks of Figure 1 of the paper (reference, PFD,
charge pump, loop filter, VCO, divider) at the behavioural level used by the
event-driven simulator in :mod:`repro.pll.behavioral`.  They are intentionally
simple — the paper's verification model only relies on the piecewise-affine
behaviour they produce — but they keep the circuit-level story explicit and
are unit-tested on their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ModelError


@dataclass
class PhaseFrequencyDetector:
    """Tri-state PFD without cycle-slip memory (as abstracted by the paper).

    State is the pair of latches (UP, DOWN).  A reference edge sets UP, a
    divider edge sets DOWN, and whenever both are set they reset together
    (the AND-reset path of the standard PFD, with zero reset delay).
    The three reachable states map onto the paper's modes:
    ``(0,0) -> mode1``, ``(1,0) -> mode2``, ``(0,1) -> mode3``.
    """

    up: bool = False
    down: bool = False

    def reset(self) -> None:
        self.up = False
        self.down = False

    def on_reference_edge(self) -> None:
        if self.down:
            self.reset()
        else:
            self.up = True

    def on_divider_edge(self) -> None:
        if self.up:
            self.reset()
        else:
            self.down = True

    @property
    def output(self) -> int:
        """+1 while pumping up, -1 while pumping down, 0 when idle."""
        return int(self.up) - int(self.down)

    @property
    def mode_name(self) -> str:
        if self.up and not self.down:
            return "mode2"
        if self.down and not self.up:
            return "mode3"
        return "mode1"


@dataclass(frozen=True)
class ChargePump:
    """Ideal charge pump sourcing/sinking ``i_p`` amperes on PFD command."""

    i_p: float

    def __post_init__(self) -> None:
        if self.i_p <= 0:
            raise ModelError("charge-pump current must be positive")

    def current(self, pfd_output: int) -> float:
        if pfd_output not in (-1, 0, 1):
            raise ModelError(f"PFD output must be in {{-1, 0, 1}}, got {pfd_output}")
        return self.i_p * pfd_output


@dataclass(frozen=True)
class LoopFilter:
    """Passive loop filter: series R-C1 branch in parallel with C2.

    Fourth-order designs add a series R2 into C3; the voltage across C3 then
    drives the VCO.  State ordering matches the verification models:
    ``(v1, v2)`` for order 3 and ``(v1, v2, v3)`` for order 4.
    """

    c1: float
    c2: float
    r: float
    c3: Optional[float] = None
    r2: Optional[float] = None

    def __post_init__(self) -> None:
        if min(self.c1, self.c2, self.r) <= 0:
            raise ModelError("loop filter component values must be positive")
        if (self.c3 is None) != (self.r2 is None):
            raise ModelError("c3 and r2 must be provided together for a fourth-order filter")
        if self.c3 is not None and min(self.c3, self.r2) <= 0:
            raise ModelError("loop filter component values must be positive")

    @property
    def order(self) -> int:
        """Number of filter state variables (2 or 3)."""
        return 2 if self.c3 is None else 3

    @property
    def control_index(self) -> int:
        """Index of the state variable that drives the VCO."""
        return 1 if self.order == 2 else 2

    def derivatives(self, voltages: Sequence[float], pump_current: float) -> np.ndarray:
        """``d/dt`` of the filter state for a given injected charge-pump current."""
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape[0] != self.order:
            raise ModelError(
                f"expected {self.order} filter voltages, got {voltages.shape[0]}"
            )
        v1, v2 = voltages[0], voltages[1]
        branch = (v2 - v1) / self.r
        if self.order == 2:
            dv1 = branch / self.c1
            dv2 = (pump_current - branch) / self.c2
            return np.array([dv1, dv2])
        v3 = voltages[2]
        ripple = (v2 - v3) / self.r2
        dv1 = branch / self.c1
        dv2 = (pump_current - branch - ripple) / self.c2
        dv3 = ripple / self.c3
        return np.array([dv1, dv2, dv3])

    def control_voltage(self, voltages: Sequence[float]) -> float:
        return float(np.asarray(voltages, dtype=float)[self.control_index])


@dataclass(frozen=True)
class VoltageControlledOscillator:
    """Linear VCO: ``f_out = f_free + k_vco * v_ctrl`` (hertz)."""

    k_vco: float
    f_free: float = 0.0

    def __post_init__(self) -> None:
        if self.k_vco <= 0:
            raise ModelError("VCO gain must be positive")

    def frequency(self, control_voltage: float) -> float:
        return self.f_free + self.k_vco * control_voltage

    def control_for_frequency(self, frequency: float) -> float:
        return (frequency - self.f_free) / self.k_vco


@dataclass(frozen=True)
class FrequencyDivider:
    """Integer-N feedback divider."""

    ratio: float

    def __post_init__(self) -> None:
        if self.ratio <= 0:
            raise ModelError("divider ratio must be positive")

    def divided_frequency(self, vco_frequency: float) -> float:
        return vco_frequency / self.ratio


@dataclass(frozen=True)
class ReferenceOscillator:
    """Ideal reference producing edges at ``f_ref`` hertz."""

    f_ref: float

    def __post_init__(self) -> None:
        if self.f_ref <= 0:
            raise ModelError("reference frequency must be positive")
