"""Sum-of-Squares programming layer.

An :class:`SOSProgram` collects

* scalar decision variables,
* polynomial decision variables (templates with unknown coefficients),
* SOS constraints ``p(x; d) ∈ Σ[x]``,
* polynomial equality constraints ``p(x; d) ≡ 0``,
* scalar affine inequality / equality constraints, and
* an optional linear objective,

and compiles them into a single conic SDP via Gram-matrix parameterisation
and coefficient matching.  This is the role YALMIP's ``solvesos`` plays in the
paper; here it is a self-contained pure-Python implementation.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..polynomial import (
    DecisionVariable,
    LinExpr,
    Monomial,
    ParametricPolynomial,
    Polynomial,
    VariableVector,
    gram_basis_for_degree,
    gram_product_table,
    monomial_basis,
)
from ..sdp import (
    ConicProblemBuilder,
    GramBlockHandle,
    SolveContext,
    SolverResult,
    SolverStatus,
    default_context,
    normalize_gram_cone,
    solve_conic_problem,
)

PolyExpr = Union[ParametricPolynomial, Polynomial]
ScalarExpr = Union[LinExpr, DecisionVariable, float, int]


class SOSProgramError(RuntimeError):
    """Raised when an SOS program is malformed or cannot be compiled."""


# Compile accounting lives on the governing SolveContext.  ``full`` counts
# actual coefficient-matching assemblies; ``memoised`` counts compile() calls
# served from a program's cache.  The parametric-solve layer asserts against
# these counters that a bound bisection query never triggers a recompile.
# Without an explicit context the module-level accessors read the
# *process-wide aggregate* (the historical semantics — it also covers work
# done inside per-job/session contexts); per-session counters are read off
# the session's own context.
def compile_counters(context: Optional[SolveContext] = None) -> Dict[str, int]:
    """SOS compile counters: ``context``'s own, or the process-wide aggregate."""
    if context is not None:
        return context.compile_counters()
    from ..sdp.context import aggregate_compile_counters

    return aggregate_compile_counters()


def reset_compile_counters(context: Optional[SolveContext] = None) -> None:
    if context is not None:
        context.reset_compile_counters()
        return
    warnings.warn(
        "reset_compile_counters() without a context mutates process-global "
        "state; create a SolveContext (or repro.api.VerificationSession) "
        "instead", DeprecationWarning, stacklevel=2)
    from ..sdp.context import reset_aggregate_compile_counters

    reset_aggregate_compile_counters()
    default_context().reset_compile_counters()


@dataclass(frozen=True)
class _SOSRowPlan:
    """Precomputed coefficient-matching layout for one (basis, support) pair.

    The equality rows of an SOS constraint are one per monomial in the union
    of the Gram product support and the expression support; the Gram side of
    every row is a pure function of that union, so it is assembled once as COO
    triplets and cached.  A recompile with the same structure only has to fill
    in the numeric coefficients.
    """

    monomials: Tuple[Monomial, ...]
    row_of: Mapping[Monomial, int]
    pair_rows: np.ndarray      # row index of each upper-triangle Gram pair
    pair_i: np.ndarray         # Gram row of each pair (i <= j)
    pair_j: np.ndarray         # Gram column of each pair
    pair_weight: np.ndarray    # symmetric-expansion multiplicity (1 diag, 2 off)
    is_product_row: np.ndarray  # rows reachable by the Gram expansion

    @property
    def num_rows(self) -> int:
        return len(self.monomials)


@lru_cache(maxsize=1024)
def _sos_row_plan(basis: Tuple[Monomial, ...],
                  support: Tuple[Monomial, ...]) -> _SOSRowPlan:
    table = gram_product_table(basis)
    extra = [m for m in support if m not in table.product_index]
    monomials = sorted(set(table.products) | set(extra), key=Monomial.sort_key)
    row_of = {m: r for r, m in enumerate(monomials)}
    product_rows = np.array([row_of[m] for m in table.products], dtype=np.int64)
    pair_rows = product_rows[table.pair_product]
    # The plan stays Gram-cone agnostic: it records which upper-triangle
    # entry (i, j) lands in which row with which symmetric multiplicity; the
    # per-cone lowering (svec locals for PSD, 2x2 pair blocks for SDD, LP
    # split variables for DD) happens in the GramBlockHandle at compile time.
    is_product_row = np.zeros(len(monomials), dtype=bool)
    is_product_row[product_rows] = True
    pair_rows.setflags(write=False)
    is_product_row.setflags(write=False)
    return _SOSRowPlan(
        monomials=tuple(monomials),
        row_of=row_of,
        pair_rows=pair_rows,
        pair_i=table.pair_i,
        pair_j=table.pair_j,
        pair_weight=table.pair_weight,
        is_product_row=is_product_row,
    )


@lru_cache(maxsize=1024)
def _gram_sparsity_edges(basis: Tuple[Monomial, ...],
                         support: Tuple[Monomial, ...]
                         ) -> Tuple[Tuple[int, int], ...]:
    """Correlative-sparsity edges of one Gram constraint (cached).

    Vertices are the Gram-basis monomials; an edge connects ``(i, j)`` when
    the product ``basis[i] * basis[j]`` is a monomial the constraint can
    actually touch: a member of the expression's support, or the square of a
    basis monomial (squares are always admissible — their coefficient-matching
    rows exist whether or not the expression carries the monomial, and cross
    terms landing on a square must be allowed to cancel against it, e.g. the
    ``1 * x^2`` entry of ``(x^2 - 1)^2``).  Entries outside the pattern are
    structurally zero in the chordal lowering; the pattern is chordally
    extended by :func:`repro.sdp.chordal.chordal_decomposition`.
    """
    table = gram_product_table(basis)
    diagonal = table.pair_i == table.pair_j
    allowed = set(np.unique(table.pair_product[diagonal]).tolist())
    for mono in support:
        index = table.product_index.get(mono)
        if index is not None:
            allowed.add(index)
    off = ~diagonal
    keep = np.isin(table.pair_product[off],
                   np.asarray(sorted(allowed), dtype=np.int64))
    return tuple(zip(table.pair_i[off][keep].tolist(),
                     table.pair_j[off][keep].tolist()))


@dataclass
class SOSConstraint:
    """An SOS membership constraint ``expr ∈ Σ[x]`` recorded in a program.

    ``cone`` selects the Gram-cone relaxation of this constraint's Gram
    matrix (``"psd"`` = full SOS, ``"chordal"`` = clique-decomposed SOS,
    ``"sdd"`` = SDSOS, ``"dd"`` = DSOS); ``None`` inherits the program's
    default cone at compile time.  ``cone_options`` are extra keyword
    options for the cone lowering (e.g. the ``merge_size``/``merge_overlap``
    clique-merge knobs of the chordal cone), stored as a sorted item tuple
    so the dataclass stays hashable-friendly.
    """

    name: str
    expression: ParametricPolynomial
    basis: Tuple[Monomial, ...]
    cone: Optional[str] = None
    cone_options: Tuple[Tuple[str, object], ...] = ()

    @property
    def gram_order(self) -> int:
        return len(self.basis)


@dataclass
class EqualityConstraint:
    """A polynomial identity ``expr ≡ 0`` (coefficient-wise equality)."""

    name: str
    expression: ParametricPolynomial


@dataclass
class ScalarConstraint:
    """A scalar affine constraint ``expr {>=, ==} 0``."""

    name: str
    expression: LinExpr
    sense: str  # ">=" or "=="


@dataclass
class SOSCertificate:
    """Post-solve data attached to one SOS constraint.

    ``gram`` is always the *full* Gram matrix — for DD/SDD relaxations it is
    reconstructed from the lifted block variables, so the eigenvalue test of
    :meth:`is_numerically_sos` applies uniformly to every cone.
    ``structure_margin`` additionally reports the relaxation's own margin
    (summed negative part of the 2x2 pair-block eigenvalues for SDD,
    Gershgorin dominance margin for DD, the plain minimum eigenvalue for
    PSD); it lower-bounds ``min_eigenvalue``, so a nonnegative value
    certifies the block decomposition itself.
    """

    name: str
    polynomial: Polynomial
    gram: np.ndarray
    basis: Tuple[Monomial, ...]
    min_eigenvalue: float
    reconstruction_error: float
    cone: str = "psd"
    structure_margin: Optional[float] = None

    def is_numerically_sos(self, eig_tol: float = -1e-7, res_tol: float = 1e-5) -> bool:
        return self.min_eigenvalue >= eig_tol and self.reconstruction_error <= res_tol


@dataclass
class SOSSolution:
    """Result of solving an :class:`SOSProgram`."""

    status: SolverStatus
    assignment: Dict[DecisionVariable, float]
    certificates: Dict[str, SOSCertificate]
    objective: float
    solver_result: SolverResult
    compile_time: float
    solve_time: float

    @property
    def is_success(self) -> bool:
        return self.status.is_success

    def value(self, expr: ScalarExpr) -> float:
        return LinExpr.coerce(expr).evaluate(self.assignment)

    def polynomial(self, expr: PolyExpr) -> Polynomial:
        if isinstance(expr, Polynomial):
            return expr
        return expr.instantiate(self.assignment)

    def max_gram_violation(self) -> float:
        """Most negative Gram eigenvalue across all SOS constraints (0 if none)."""
        if not self.certificates:
            return 0.0
        return min(cert.min_eigenvalue for cert in self.certificates.values())

    def max_reconstruction_error(self) -> float:
        if not self.certificates:
            return 0.0
        return max(cert.reconstruction_error for cert in self.certificates.values())


class SOSProgram:
    """A container for SOS constraints compiled to a conic SDP.

    ``default_cone`` selects the Gram-cone relaxation applied to every SOS
    constraint that does not carry its own ``cone=``: ``"psd"`` (full SOS,
    the default), ``"chordal"`` (clique-sized PSD blocks over the chordally
    extended correlative-sparsity pattern — exact for chordally-sparse
    constraints), ``"sdd"`` (SDSOS — sums of 2x2 PSD blocks) or ``"dd"``
    (DSOS — a pure LP lowering).  Relaxation aliases (``"sos"``,
    ``"chordal"``, ``"sdsos"``, ``"dsos"``) are accepted.

    ``context`` is the :class:`~repro.sdp.context.SolveContext` whose cache,
    counters and backend defaults govern this program's compiles and solves;
    ``None`` uses the process-default context (the historical behaviour).
    """

    def __init__(self, name: str = "sos_program", default_cone: str = "psd",
                 context: Optional[SolveContext] = None):
        self.name = name
        self.context = context
        self._default_cone = normalize_gram_cone(default_cone)
        self._decision_variables: Dict[int, DecisionVariable] = {}
        self._sos_constraints: List[SOSConstraint] = []
        self._equality_constraints: List[EqualityConstraint] = []
        self._scalar_constraints: List[ScalarConstraint] = []
        self._objective: Optional[LinExpr] = None
        self._objective_sense: str = "min"
        self._counter = 0
        self._compiled: Optional[Tuple[ConicProblemBuilder,
                                       Dict[DecisionVariable, Tuple[int, int]],
                                       List[Tuple[SOSConstraint, GramBlockHandle]]]] = None

    def _invalidate(self) -> None:
        self._compiled = None

    @property
    def default_cone(self) -> str:
        """Gram cone used for constraints without an explicit ``cone=``."""
        return self._default_cone

    @default_cone.setter
    def default_cone(self, cone: str) -> None:
        self._default_cone = normalize_gram_cone(cone)
        self._invalidate()

    # ------------------------------------------------------------------
    # Variable creation
    # ------------------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def new_variable(self, name: Optional[str] = None) -> DecisionVariable:
        """A single scalar decision variable."""
        var = DecisionVariable(name or self._fresh_name("d"))
        self._decision_variables[var.uid] = var
        self._invalidate()
        return var

    def new_polynomial_variable(
        self,
        variables: VariableVector,
        degree: int,
        name: Optional[str] = None,
        min_degree: int = 0,
        even_only: bool = False,
        diagonal_only: bool = False,
    ) -> ParametricPolynomial:
        """A polynomial template with one free coefficient per monomial.

        ``even_only`` keeps even-total-degree monomials; ``diagonal_only``
        keeps only the constant and even pure powers of single variables
        (``1, x_i^2, x_i^4, ...``) — the *separable* template that preserves
        the correlative sparsity of whatever the template multiplies, which
        is what makes the chordal Gram decomposition effective downstream.
        """
        name = name or self._fresh_name("p")
        basis = monomial_basis(len(variables), degree, min_degree)
        if even_only:
            basis = tuple(m for m in basis if m.degree % 2 == 0)
        if diagonal_only:
            basis = tuple(
                m for m in basis
                if m.degree % 2 == 0
                and sum(1 for exp in m.exponents if exp) <= 1)
        coeffs = {}
        for mono in basis:
            dvar = DecisionVariable(f"{name}[{mono.to_string(variables)}]")
            self._decision_variables[dvar.uid] = dvar
            coeffs[mono] = LinExpr.from_variable(dvar)
        self._invalidate()
        return ParametricPolynomial(variables, coeffs)

    def new_sos_polynomial(
        self,
        variables: VariableVector,
        degree: int,
        name: Optional[str] = None,
        min_degree: int = 0,
        cone: Optional[str] = None,
        diagonal_only: bool = False,
    ) -> ParametricPolynomial:
        """A polynomial template constrained to be SOS.

        ``min_degree = 2`` drops constant and linear monomials, producing an
        SOS polynomial that vanishes at the origin (useful for Lyapunov
        certificates and S-procedure multipliers that must not shift the
        equilibrium).  ``diagonal_only`` restricts the template to
        ``1, x_i^2, x_i^4, ...`` — a separable SOS multiplier that keeps the
        product's correlative-sparsity graph sparse (see
        :meth:`new_polynomial_variable`).
        """
        name = name or self._fresh_name("sigma")
        poly = self.new_polynomial_variable(variables, degree, name=name,
                                            min_degree=min_degree,
                                            diagonal_only=diagonal_only)
        self.add_sos_constraint(poly, name=f"{name}_sos", cone=cone)
        return poly

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def _register_expression_variables(self, expr: ParametricPolynomial) -> None:
        for dvar in expr.decision_variables():
            self._decision_variables.setdefault(dvar.uid, dvar)

    def add_sos_constraint(self, expression: PolyExpr,
                           name: Optional[str] = None,
                           cone: Optional[str] = None,
                           cone_options: Optional[Dict[str, object]] = None
                           ) -> SOSConstraint:
        """Require ``expression`` to be a sum of squares.

        ``cone`` optionally restricts this constraint's Gram matrix to a
        cheaper cone (``"sdd"``/``"dd"``, certifying SDSOS/DSOS membership —
        a *stronger* claim, since DSOS ⊂ SDSOS ⊂ SOS — or ``"chordal"``,
        splitting the Gram block along its correlative sparsity cliques);
        ``None`` uses the program's :attr:`default_cone`.  ``cone_options``
        forwards extra lowering knobs, e.g. ``merge_size``/``merge_overlap``
        for the chordal clique merge.
        """
        expr = ParametricPolynomial.coerce(expression)
        name = name or self._fresh_name("sos")
        if cone is not None:
            cone = normalize_gram_cone(cone)
        degree = expr.degree
        # Odd-degree expressions are allowed: the Gram basis is rounded up and the
        # coefficient-matching equalities force the top odd-degree coefficients into
        # a consistent (possibly zero) configuration.  A *numeric* odd-degree
        # polynomial can never be SOS, so reject that case outright.
        if degree % 2 == 1 and expr.is_numeric():
            raise SOSProgramError(
                f"SOS constraint {name!r} is a fixed polynomial of odd degree {degree}; "
                "an odd-degree polynomial can never be a sum of squares"
            )
        basis = gram_basis_for_degree(len(expr.variables), degree)
        constraint = SOSConstraint(
            name=name, expression=expr, basis=basis, cone=cone,
            cone_options=tuple(sorted((cone_options or {}).items())))
        self._register_expression_variables(expr)
        self._sos_constraints.append(constraint)
        self._invalidate()
        return constraint

    def add_equality_constraint(self, expression: PolyExpr,
                                name: Optional[str] = None) -> EqualityConstraint:
        """Require ``expression ≡ 0`` as a polynomial identity."""
        expr = ParametricPolynomial.coerce(expression)
        name = name or self._fresh_name("eq")
        constraint = EqualityConstraint(name=name, expression=expr)
        self._register_expression_variables(expr)
        self._equality_constraints.append(constraint)
        self._invalidate()
        return constraint

    def add_scalar_constraint(self, expression: ScalarExpr, sense: str = ">=",
                              name: Optional[str] = None) -> ScalarConstraint:
        """Scalar affine constraint ``expression >= 0`` or ``expression == 0``."""
        if sense not in (">=", "=="):
            raise SOSProgramError(f"unsupported scalar constraint sense {sense!r}")
        expr = LinExpr.coerce(expression)
        name = name or self._fresh_name("lin")
        constraint = ScalarConstraint(name=name, expression=expr, sense=sense)
        for dvar in expr.coeffs:
            self._decision_variables.setdefault(dvar.uid, dvar)
        self._scalar_constraints.append(constraint)
        self._invalidate()
        return constraint

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def minimize(self, objective: ScalarExpr) -> None:
        self._objective = LinExpr.coerce(objective)
        self._objective_sense = "min"
        for dvar in self._objective.coeffs:
            self._decision_variables.setdefault(dvar.uid, dvar)
        self._invalidate()

    def maximize(self, objective: ScalarExpr) -> None:
        self._objective = LinExpr.coerce(objective)
        self._objective_sense = "max"
        for dvar in self._objective.coeffs:
            self._decision_variables.setdefault(dvar.uid, dvar)
        self._invalidate()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _decision_order(self) -> List[DecisionVariable]:
        return [self._decision_variables[uid] for uid in sorted(self._decision_variables)]

    def compile(self, context: Optional[SolveContext] = None
                ) -> Tuple[ConicProblemBuilder, Dict[DecisionVariable, Tuple[int, int]],
                           List[Tuple[SOSConstraint, GramBlockHandle]]]:
        """Build the conic problem.

        Returns the builder, a map from decision variable to (block id, local
        index), and the list of (SOS constraint, Gram block handle) pairs.
        The result is memoised: recompiling an unmodified program is free,
        and the per-(basis, support) Gram row plans are cached process-wide
        so that structurally identical programs (parameter sweeps, bisection
        loops) only refill numeric coefficients.  ``context`` overrides which
        context the compile event is counted on for this call (used by
        :meth:`solve` so a per-call context override governs the whole
        compile-and-solve, not just the solve).
        """
        counting = context or self.context or default_context()
        if self._compiled is not None:
            counting.record_compile_event("memoised")
            return self._compiled
        counting.record_compile_event("full")
        builder = ConicProblemBuilder()
        decision_order = self._decision_order()
        var_location: Dict[DecisionVariable, Tuple[int, int]] = {}
        free_id = -1
        if decision_order:
            free_id, _ = builder.add_free_block(len(decision_order), name="decision")
            for local, dvar in enumerate(decision_order):
                var_location[dvar] = (free_id, local)

        sos_blocks: List[Tuple[SOSConstraint, GramBlockHandle]] = []
        for constraint in self._sos_constraints:
            cone = constraint.cone or self._default_cone
            cone_options = dict(constraint.cone_options)
            if cone == "chordal":
                # The chordal lowering needs the constraint's correlative-
                # sparsity graph: which Gram entries can be nonzero, read off
                # the basis products landing in the expression's support.
                support = tuple(sorted(constraint.expression.coefficients,
                                       key=Monomial.sort_key))
                cone_options["sparsity"] = _gram_sparsity_edges(
                    constraint.basis, support)
            handle = builder.add_gram_block(
                constraint.gram_order, cone=cone, name=constraint.name,
                **cone_options)
            sos_blocks.append((constraint, handle))
        # The cone layout enters the problem fingerprint, so distinct
        # relaxations of the same program never share a cache entry (the
        # chordal tag includes the clique layout itself, keeping different
        # sparsity patterns — and hence different lowerings — distinct too).
        builder.set_layout(",".join(handle.layout_tag
                                    for _, handle in sos_blocks))

        # Coefficient matching for SOS constraints:
        #   sum_{(i,j): z_i z_j = m} Q_ij  ==  c_m(d)      for every monomial m.
        # The Gram side comes from the cached COO row plan lowered through
        # the constraint's Gram-cone handle; only the numeric right-hand
        # sides and decision-variable coefficients are filled here.
        for constraint, handle in sos_blocks:
            expr = constraint.expression
            support = tuple(sorted(expr.coefficients, key=Monomial.sort_key))
            plan = _sos_row_plan(constraint.basis, support)
            rhs = np.zeros(plan.num_rows)
            keep = np.ones(plan.num_rows, dtype=bool)
            free_rows: List[int] = []
            free_locals: List[int] = []
            free_values: List[float] = []
            for mono in support:
                coeff_expr = expr.coefficients[mono]
                row = plan.row_of[mono]
                rhs[row] = coeff_expr.constant
                coeffs = coeff_expr.coeffs
                if coeffs:
                    if len(coeffs) == 1:
                        ((dvar, a),) = coeffs.items()
                        free_rows.append(row)
                        free_locals.append(var_location[dvar][1])
                        free_values.append(-a)
                    else:
                        for dvar in sorted(coeffs, key=lambda d: d.uid):
                            free_rows.append(row)
                            free_locals.append(var_location[dvar][1])
                            free_values.append(-coeffs[dvar])
                elif not plan.is_product_row[row]:
                    if abs(coeff_expr.constant) > 1e-12:
                        raise SOSProgramError(
                            f"SOS constraint {constraint.name!r}: monomial "
                            f"{mono.to_string(expr.variables)} has fixed coefficient "
                            f"{coeff_expr.constant} but cannot be produced by the Gram basis"
                        )
                    keep[row] = False
            if keep.all():
                row_map = None
                batch_rhs = rhs
                pair_rows = plan.pair_rows
            else:
                row_map = np.cumsum(keep) - 1
                batch_rhs = rhs[keep]
                pair_rows = row_map[plan.pair_rows]
            triplets = handle.entry_triplets(pair_rows, plan.pair_i,
                                             plan.pair_j, plan.pair_weight)
            if free_rows:
                mapped = np.asarray(free_rows, dtype=np.int64)
                if row_map is not None:
                    mapped = row_map[mapped]
                triplets.append((free_id, mapped,
                                 np.asarray(free_locals, dtype=np.int64),
                                 np.asarray(free_values)))
            builder.add_equality_rows(batch_rhs, triplets)

        # Polynomial equality constraints: every coefficient must vanish.
        for constraint in self._equality_constraints:
            expr = constraint.expression
            for mono, coeff_expr in expr.coefficients.items():
                entries = {}
                for dvar, a in coeff_expr.coeffs.items():
                    loc = var_location[dvar]
                    entries[loc] = entries.get(loc, 0.0) + a
                rhs = -coeff_expr.constant
                if not entries:
                    if abs(rhs) > 1e-12:
                        raise SOSProgramError(
                            f"equality constraint {constraint.name!r} forces "
                            f"{-rhs} == 0 for monomial {mono.to_string(expr.variables)}"
                        )
                    continue
                builder.add_equality_row(entries, rhs)

        # Scalar constraints.
        slack_counter = 0
        for constraint in self._scalar_constraints:
            expr = constraint.expression
            entries = {}
            for dvar, a in expr.coeffs.items():
                loc = var_location[dvar]
                entries[loc] = entries.get(loc, 0.0) + a
            rhs = -expr.constant
            if constraint.sense == "==":
                if not entries:
                    if abs(rhs) > 1e-12:
                        raise SOSProgramError(
                            f"scalar equality {constraint.name!r} is trivially false")
                    continue
                builder.add_equality_row(entries, rhs)
            else:  # expr >= 0  <=>  expr - s = 0, s >= 0
                slack_id, _ = builder.add_nonneg_block(1, name=f"slack_{slack_counter}")
                slack_counter += 1
                entries[(slack_id, 0)] = -1.0
                builder.add_equality_row(entries, rhs)

        # Objective.
        if self._objective is not None:
            sign = 1.0 if self._objective_sense == "min" else -1.0
            for dvar, a in self._objective.coeffs.items():
                block_id, local = var_location[dvar]
                builder.add_cost(block_id, local, sign * a)

        self._compiled = (builder, var_location, sos_blocks)
        return self._compiled

    # ------------------------------------------------------------------
    # Solve
    # ------------------------------------------------------------------
    def solve(self, backend: Union[str, object, None] = None,
              warm_start: Optional[object] = None,
              context: Optional[SolveContext] = None,
              **solver_settings) -> SOSSolution:
        """Compile (memoised) and solve the program.

        ``warm_start`` accepts the ``warm_start_data`` dict of a previous
        solve on a structurally identical program (e.g. the previous level of
        a bisection loop); it is forwarded to backends that support it.
        ``context`` overrides the program's own solve context for this call
        (both the compile accounting and the solve itself).
        """
        effective = context or self.context
        compile_start = time.perf_counter()
        builder, var_location, sos_blocks = self.compile(context=effective)
        problem = builder.build()
        compile_time = time.perf_counter() - compile_start

        result = solve_conic_problem(problem, backend=backend,
                                     warm_start=warm_start,
                                     context=effective,
                                     **solver_settings)
        return self.interpret_result(result, compile_time=compile_time,
                                     context=effective)

    def interpret_result(self, result: SolverResult, compile_time: float = 0.0,
                         with_certificates: bool = True,
                         context: Optional[SolveContext] = None) -> SOSSolution:
        """Turn a raw conic :class:`SolverResult` into an :class:`SOSSolution`.

        Used by :meth:`solve` and by the parametric-solve layer, where the
        conic problem was produced by ``bind(theta)`` on this program's
        structure and solved externally (possibly as part of a batch).
        ``with_certificates=False`` skips the Gram-certificate extraction —
        appropriate when the bound problem's numeric expression differs from
        this template's, so reconstruction errors would be computed against
        the wrong right-hand sides.  ``context`` governs the (memoised)
        compile accounting, as in :meth:`compile`.
        """
        builder, var_location, sos_blocks = self.compile(context=context)

        assignment: Dict[DecisionVariable, float] = {}
        certificates: Dict[str, SOSCertificate] = {}
        objective = float("nan")
        if result.x is not None:
            for dvar, (block_id, local) in var_location.items():
                assignment[dvar] = float(builder.block_value(block_id, result.x)[local])
            if with_certificates:
                for constraint, handle in sos_blocks:
                    gram = handle.matrix(builder, result.x)
                    poly = constraint.expression.instantiate(assignment) \
                        if assignment or constraint.expression.is_numeric() \
                        else constraint.expression.to_polynomial()
                    from ..polynomial.gram import gram_to_polynomial

                    reconstructed = gram_to_polynomial(poly.variables, constraint.basis, gram)
                    eigenvalues = np.linalg.eigvalsh(0.5 * (gram + gram.T)) if gram.size else np.array([0.0])
                    certificates[constraint.name] = SOSCertificate(
                        name=constraint.name,
                        polynomial=poly,
                        gram=gram,
                        basis=constraint.basis,
                        min_eigenvalue=float(eigenvalues.min()),
                        reconstruction_error=(poly - reconstructed).max_abs_coefficient(),
                        cone=handle.cone,
                        structure_margin=handle.structure_margin(builder, result.x),
                    )
            if self._objective is not None and assignment:
                objective = self._objective.evaluate(assignment)

        return SOSSolution(
            status=result.status,
            assignment=assignment,
            certificates=certificates,
            objective=objective,
            solver_result=result,
            compile_time=compile_time,
            solve_time=result.solve_time,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_sos_constraints(self) -> int:
        return len(self._sos_constraints)

    @property
    def num_equality_constraints(self) -> int:
        return len(self._equality_constraints)

    @property
    def num_decision_variables(self) -> int:
        return len(self._decision_variables)

    def describe(self) -> str:
        gram_orders = [c.gram_order for c in self._sos_constraints]
        return (
            f"SOSProgram({self.name!r}: {self.num_decision_variables} scalars, "
            f"{self.num_sos_constraints} SOS constraints "
            f"(Gram orders {gram_orders}, cone {self._default_cone}), "
            f"{self.num_equality_constraints} polynomial equalities, "
            f"{len(self._scalar_constraints)} scalar constraints)"
        )
