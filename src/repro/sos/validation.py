"""A-posteriori validation of SOS certificates.

The SDP backends are first-order methods with finite tolerances, so every
certificate produced by the pipeline is re-checked independently:

* *algebraically* — the Gram matrix must be (numerically) PSD and reproduce
  the constrained polynomial up to a small coefficient residual;
* *by sampling* — the certified inequality is evaluated on a dense cloud of
  points drawn from the relevant semialgebraic set; a violation beyond the
  tolerance flags the certificate as unsound.

This mirrors sound practice in SOS-based verification: the SDP is only a
search engine, the returned certificate is what carries the proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..polynomial import Polynomial
from .sprocedure import SemialgebraicSet


@dataclass
class ValidationReport:
    """Outcome of a sampling-based inequality check."""

    name: str
    num_samples: int
    num_in_domain: int
    min_value: float
    argmin: Optional[np.ndarray]
    tolerance: float

    @property
    def passed(self) -> bool:
        return self.min_value >= -self.tolerance

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (f"[{status}] {self.name}: min={self.min_value:.3e} over "
                f"{self.num_in_domain}/{self.num_samples} in-domain samples "
                f"(tol={self.tolerance:g})")


def sample_box(bounds: Sequence[Tuple[float, float]], num_samples: int,
               seed: int = 0) -> np.ndarray:
    """Uniform samples from an axis-aligned box."""
    rng = np.random.default_rng(seed)
    lows = np.array([b[0] for b in bounds])
    highs = np.array([b[1] for b in bounds])
    return rng.uniform(lows, highs, size=(num_samples, len(bounds)))


def sample_set(domain: SemialgebraicSet, bounds: Sequence[Tuple[float, float]],
               num_samples: int, seed: int = 0,
               max_attempts: int = 20) -> np.ndarray:
    """Rejection-sample points of a semialgebraic set inside a bounding box."""
    collected: list = []
    attempt = 0
    needed = num_samples
    while needed > 0 and attempt < max_attempts:
        candidates = sample_box(bounds, max(needed * 4, 64), seed=seed + attempt)
        accepted = candidates[domain.contains_many(candidates)]
        collected.extend(accepted)
        needed = num_samples - len(collected)
        attempt += 1
    if not collected:
        return np.empty((0, len(bounds)))
    return np.array(collected[:num_samples])


def validate_nonnegativity(
    polynomial: Polynomial,
    domain: Optional[SemialgebraicSet],
    bounds: Sequence[Tuple[float, float]],
    num_samples: int = 2000,
    tolerance: float = 1e-6,
    seed: int = 0,
    name: str = "nonnegativity",
) -> ValidationReport:
    """Check ``polynomial >= -tolerance`` on sampled points of ``domain``."""
    points = sample_box(bounds, num_samples, seed=seed)
    if domain is not None:
        in_domain = points[domain.contains_many(points)]
    else:
        in_domain = points
    if in_domain.shape[0] == 0:
        return ValidationReport(name=name, num_samples=num_samples, num_in_domain=0,
                                min_value=float("inf"), argmin=None, tolerance=tolerance)
    values = polynomial.evaluate_many(in_domain)
    idx = int(np.argmin(values))
    return ValidationReport(
        name=name,
        num_samples=num_samples,
        num_in_domain=int(in_domain.shape[0]),
        min_value=float(values[idx]),
        argmin=in_domain[idx],
        tolerance=tolerance,
    )


def validate_decrease_along_field(
    certificate: Polynomial,
    vector_field: Sequence[Polynomial],
    domain: Optional[SemialgebraicSet],
    bounds: Sequence[Tuple[float, float]],
    num_samples: int = 2000,
    tolerance: float = 1e-6,
    seed: int = 0,
    name: str = "lie_derivative",
) -> ValidationReport:
    """Check that the Lie derivative of ``certificate`` is <= tolerance on the domain."""
    lie = certificate.lie_derivative(list(vector_field))
    return validate_nonnegativity(-lie, domain, bounds, num_samples=num_samples,
                                  tolerance=tolerance, seed=seed, name=name)


def minimum_on_level_set(
    polynomial: Polynomial,
    level_function: Polynomial,
    level: float,
    bounds: Sequence[Tuple[float, float]],
    num_samples: int = 4000,
    seed: int = 0,
) -> float:
    """Sampled minimum of ``polynomial`` on ``{x : level_function(x) <= level}``."""
    points = sample_box(bounds, num_samples, seed=seed)
    values_level = level_function.evaluate_many(points)
    inside = points[values_level <= level]
    if inside.shape[0] == 0:
        return float("inf")
    return float(polynomial.evaluate_many(inside).min())
