"""S-procedure helpers: positivity of polynomials on semi-algebraic sets.

The verification conditions of the paper all have the shape

    p(x; d) >= 0   for all x in  D = {x : g_1(x) >= 0, ..., g_k(x) >= 0,
                                          h_1(x) = 0, ..., h_l(x) = 0}

which the S-procedure relaxes to the SOS constraint

    p - sum_j sigma_j * g_j - sum_i lambda_i * h_i  ∈ Σ[x],
    sigma_j ∈ Σ[x],   lambda_i arbitrary polynomials.

These helpers add the multipliers and the final SOS constraint to an
:class:`~repro.sos.program.SOSProgram` and hand back the multiplier templates
so callers can inspect them after solving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..polynomial import ParametricPolynomial, Polynomial, VariableVector
from .program import PolyExpr, SOSProgram


@dataclass
class SemialgebraicSet:
    """``{x : g_i(x) >= 0 for all i, h_j(x) = 0 for all j}``."""

    variables: VariableVector
    inequalities: Tuple[Polynomial, ...] = ()
    equalities: Tuple[Polynomial, ...] = ()
    name: str = "domain"

    def __post_init__(self) -> None:
        self.inequalities = tuple(self.inequalities)
        self.equalities = tuple(self.equalities)
        for poly in self.inequalities + self.equalities:
            if not set(poly.variables.names) <= set(self.variables.names):
                raise ValueError(
                    f"constraint {poly} uses variables outside {self.variables.names}"
                )

    def contains(self, point: Sequence[float], tolerance: float = 1e-9) -> bool:
        """Numeric membership check (used by sampling-based validation)."""
        full = list(point)
        for poly in self.inequalities:
            if poly.with_variables(self.variables).evaluate(full) < -tolerance:
                return False
        for poly in self.equalities:
            if abs(poly.with_variables(self.variables).evaluate(full)) > tolerance:
                return False
        return True

    def contains_many(self, points: np.ndarray, tolerance: float = 1e-9) -> np.ndarray:
        """Vectorised membership for an ``(m, n)`` array of points.

        One :meth:`Polynomial.evaluate_many` pass per constraint instead of a
        Python loop over points — the work-horse of sampling-based validation.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        inside = np.ones(points.shape[0], dtype=bool)
        for poly in self.inequalities:
            if not inside.any():
                break
            values = poly.with_variables(self.variables).evaluate_many(points)
            inside &= values >= -tolerance
        for poly in self.equalities:
            if not inside.any():
                break
            values = poly.with_variables(self.variables).evaluate_many(points)
            inside &= np.abs(values) <= tolerance
        return inside

    def intersect(self, other: "SemialgebraicSet") -> "SemialgebraicSet":
        if other.variables != self.variables:
            raise ValueError("cannot intersect sets over different variable vectors")
        return SemialgebraicSet(
            variables=self.variables,
            inequalities=self.inequalities + other.inequalities,
            equalities=self.equalities + other.equalities,
            name=f"{self.name}&{other.name}",
        )

    def with_box(self, bounds: Sequence[Tuple[float, float]]) -> "SemialgebraicSet":
        """Add box constraints ``(x_i - lo)(hi - x_i) >= 0`` for every state."""
        extra: List[Polynomial] = []
        for i, (lo, hi) in enumerate(bounds):
            xi = Polynomial.from_variable(self.variables[i], self.variables)
            extra.append((xi - lo) * (hi - xi))
        return SemialgebraicSet(
            variables=self.variables,
            inequalities=self.inequalities + tuple(extra),
            equalities=self.equalities,
            name=self.name,
        )

    def describe(self) -> str:
        return (f"SemialgebraicSet({self.name!r}: {len(self.inequalities)} inequalities, "
                f"{len(self.equalities)} equalities over {list(self.variables.names)})")


@dataclass
class SProcedureCertificate:
    """Multiplier templates introduced by one S-procedure application."""

    inequality_multipliers: Tuple[ParametricPolynomial, ...]
    equality_multipliers: Tuple[ParametricPolynomial, ...]
    constrained_expression: ParametricPolynomial
    constraint_name: str


def add_positivity_on_set(
    program: SOSProgram,
    expression: PolyExpr,
    domain: SemialgebraicSet,
    multiplier_degree: int = 2,
    name: Optional[str] = None,
    strictness: float = 0.0,
    strictness_degree: int = 2,
) -> SProcedureCertificate:
    """Constrain ``expression >= strictness * ||x||^strictness_degree`` on ``domain``.

    ``strictness = 0`` gives plain non-negativity; a positive value enforces a
    positive-definite margin (used for Lyapunov positivity away from the
    equilibrium).
    """
    expr = ParametricPolynomial.coerce(expression)
    variables = domain.variables
    expr = expr.with_variables(variables) if expr.variables != variables else expr

    shifted = expr
    if strictness > 0.0:
        margin = Polynomial.zero(variables)
        for v in variables:
            margin = margin + Polynomial.from_variable(v, variables) ** strictness_degree
        shifted = shifted - margin * strictness

    ineq_multipliers: List[ParametricPolynomial] = []
    for k, g in enumerate(domain.inequalities):
        sigma = program.new_sos_polynomial(variables, multiplier_degree,
                                           name=f"{name or 'sproc'}_sig{k}")
        ineq_multipliers.append(sigma)
        shifted = shifted - sigma * g.with_variables(variables)

    eq_multipliers: List[ParametricPolynomial] = []
    for k, h in enumerate(domain.equalities):
        lam = program.new_polynomial_variable(variables, multiplier_degree,
                                              name=f"{name or 'sproc'}_lam{k}")
        eq_multipliers.append(lam)
        shifted = shifted - lam * h.with_variables(variables)

    constraint_name = name or f"positivity_{program.num_sos_constraints}"
    program.add_sos_constraint(shifted, name=constraint_name)
    return SProcedureCertificate(
        inequality_multipliers=tuple(ineq_multipliers),
        equality_multipliers=tuple(eq_multipliers),
        constrained_expression=shifted,
        constraint_name=constraint_name,
    )


def add_nonnegativity_on_set(program: SOSProgram, expression: PolyExpr,
                             domain: SemialgebraicSet, multiplier_degree: int = 2,
                             name: Optional[str] = None) -> SProcedureCertificate:
    """Alias for :func:`add_positivity_on_set` with zero strictness."""
    return add_positivity_on_set(program, expression, domain, multiplier_degree,
                                 name=name, strictness=0.0)


def interval_constraints(variables: VariableVector,
                         bounds: Sequence[Tuple[float, float]],
                         indices: Optional[Sequence[int]] = None) -> Tuple[Polynomial, ...]:
    """Box constraints ``(x_i - lo)(hi - x_i) >= 0`` as polynomials."""
    if indices is None:
        indices = range(len(bounds))
    constraints = []
    for idx, (lo, hi) in zip(indices, bounds):
        xi = Polynomial.from_variable(variables[idx], variables)
        constraints.append((xi - lo) * (hi - xi))
    return tuple(constraints)


def ball_constraint(variables: VariableVector, radius: float,
                    center: Optional[Sequence[float]] = None) -> Polynomial:
    """``radius^2 - ||x - center||^2 >= 0``."""
    center = center or [0.0] * len(variables)
    poly = Polynomial.constant(variables, radius ** 2)
    for i, v in enumerate(variables):
        xi = Polynomial.from_variable(v, variables) - float(center[i])
        poly = poly - xi * xi
    return poly
