"""Parametric SOS programs: compile a θ-indexed family once, rebind cheaply.

The verification pipeline repeatedly solves SOS feasibility queries that
differ only in one scalar parameter — the candidate level ``θ`` of a
level-curve maximisation enters the Lemma-1 certificate affinely through
``λ·(V − θ)``.  Constructing and compiling a fresh :class:`SOSProgram` for
every bisection probe repeats identical structural work; the conic data is
really an affine family

    A(θ) = A0 + θ·A1,        b(θ) = b0 + θ·b1,

over a fixed cone and cost vector.  :class:`ParametricSOSProgram` recovers
``(A0, A1, b0, b1)`` from two structural compiles at distinct probe values
(optionally verifying affinity at a third), aligns both matrices on the union
sparsity pattern, and thereafter :meth:`bind` assembles the problem for any
``θ`` with a single ``data0 + θ·data1`` array operation — no polynomial
arithmetic, no coefficient matching, no Gram-table work.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np
import scipy.sparse as sp

from ..sdp import ConicProblem, SolverResult
from .program import SOSProgram, SOSSolution

BuildResult = Union[SOSProgram, Tuple[SOSProgram, Any]]


class ParametricProgramError(RuntimeError):
    """Raised when a θ-family is structurally inconsistent or not affine."""


class ParametricSOSProgram:
    """A family of SOS programs ``θ -> program(θ)`` compiled once.

    ``build`` is a callable mapping a float ``θ`` to either an
    :class:`SOSProgram` or a ``(program, payload)`` pair; it must construct
    the *same structure* (same constraints, same templates, same ordering)
    for every ``θ``, with ``θ`` entering the conic data affinely.  The
    program built at ``probes[0]`` is kept as the canonical template for
    interpreting solver results (variable layout is identical across the
    family); its payload — e.g. a multiplier template — is exposed as
    :attr:`payload`.

    ``context`` is the :class:`~repro.sdp.context.SolveContext` applied to
    every program the family builds (unless the build callable already
    attached one), so the structural compiles are counted on the owning
    session rather than the process default.
    """

    def __init__(self, build: Callable[[float], BuildResult],
                 probes: Tuple[float, float] = (0.0, 1.0),
                 check_affinity: bool = True,
                 name: str = "parametric_sos",
                 context: Optional[object] = None):
        if float(probes[0]) == float(probes[1]):
            raise ValueError("probe values must be distinct")
        self.name = name
        self.context = context
        self._build = build
        self._probes = (float(probes[0]), float(probes[1]))
        self._check_affinity = check_affinity
        self._compiled = False
        self._program: Optional[SOSProgram] = None
        self._payload: Any = None
        #: Number of full structural compiles performed (2, or 3 with the
        #: affinity check) — bisection probes through :meth:`bind` add zero.
        self.num_structure_compiles = 0
        #: Number of :meth:`bind` calls served from the affine decomposition.
        self.num_binds = 0

    # ------------------------------------------------------------------
    @property
    def program(self) -> SOSProgram:
        """The canonical template program (built at the first probe)."""
        self.compile()
        assert self._program is not None
        return self._program

    @property
    def payload(self) -> Any:
        """Whatever the build callable returned alongside the canonical program."""
        self.compile()
        return self._payload

    @property
    def conic_shape(self) -> Tuple[int, int]:
        """``(rows, cols)`` of the bound constraint matrix (compiles if needed)."""
        self.compile()
        return self._shape

    @property
    def dims(self):
        """Cone dimensions of the bound problems (compiles if needed)."""
        self.compile()
        return self._dims

    # ------------------------------------------------------------------
    def _build_at(self, theta: float) -> Tuple[SOSProgram, Any, ConicProblem]:
        built = self._build(theta)
        if isinstance(built, tuple):
            program, payload = built
        else:
            program, payload = built, None
        if self.context is not None and program.context is None:
            program.context = self.context
        problem = program.compile()[0].build()
        self.num_structure_compiles += 1
        return program, payload, problem

    @staticmethod
    def _union_align(A_first: sp.csr_matrix, A_second: sp.csr_matrix,
                     shape: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray,
                                                      np.ndarray, np.ndarray]:
        """Expand two matrices onto their shared union sparsity pattern.

        Both outputs are built from the same concatenated COO index arrays,
        so after duplicate-summing they are guaranteed to share ``indptr``
        and ``indices`` (explicit zeros where only the other matrix has an
        entry are retained, not pruned).
        """
        coo_first = A_first.tocoo()
        coo_second = A_second.tocoo()
        rows = np.concatenate([coo_first.row, coo_second.row])
        cols = np.concatenate([coo_first.col, coo_second.col])
        data_first = np.concatenate([coo_first.data, np.zeros(coo_second.nnz)])
        data_second = np.concatenate([np.zeros(coo_first.nnz), coo_second.data])
        first = sp.csr_matrix((data_first, (rows, cols)), shape=shape)
        second = sp.csr_matrix((data_second, (rows, cols)), shape=shape)
        first.sum_duplicates()
        second.sum_duplicates()
        first.sort_indices()
        second.sort_indices()
        if not (np.array_equal(first.indptr, second.indptr)
                and np.array_equal(first.indices, second.indices)):
            raise ParametricProgramError("union sparsity alignment failed")
        return first.indptr, first.indices, first.data, second.data

    def compile(self) -> "ParametricSOSProgram":
        """Perform the structural compiles and the affine decomposition (once)."""
        if self._compiled:
            return self
        theta_a, theta_b = self._probes
        program_a, payload, problem_a = self._build_at(theta_a)
        _, _, problem_b = self._build_at(theta_b)

        if problem_a.dims != problem_b.dims or problem_a.A.shape != problem_b.A.shape \
                or problem_a.layout != problem_b.layout:
            raise ParametricProgramError(
                f"family {self.name!r} is not structurally stable across theta: "
                f"{problem_a.describe()} vs {problem_b.describe()}"
            )
        if not np.allclose(problem_a.c, problem_b.c):
            raise ParametricProgramError(
                f"family {self.name!r} has a theta-dependent cost vector; only "
                "affine constraint data is supported"
            )

        span = theta_b - theta_a
        A1 = ((problem_b.A - problem_a.A) * (1.0 / span)).tocsr()
        A0 = (problem_a.A - A1.multiply(theta_a)).tocsr()
        b1 = (problem_b.b - problem_a.b) / span
        b0 = problem_a.b - theta_a * b1

        self._shape = problem_a.A.shape
        self._indptr, self._indices, self._data0, self._data1 = \
            self._union_align(A0, A1, self._shape)
        self._b0, self._b1 = b0, b1
        self._c = problem_a.c
        self._dims = problem_a.dims
        self._layout = problem_a.layout
        self._program = program_a
        self._payload = payload
        self._compiled = True

        if self._check_affinity:
            theta_c = theta_a + 0.5 * span
            _, _, problem_c = self._build_at(theta_c)
            bound = self.bind(theta_c)
            self.num_binds -= 1  # verification probe, not a user bind
            scale = 1.0 + float(np.abs(bound.A.data).max(initial=0.0))
            difference = abs(problem_c.A - bound.A)
            max_difference = float(difference.data.max(initial=0.0)) if difference.nnz else 0.0
            if max_difference > 1e-9 * scale or \
                    not np.allclose(problem_c.b, bound.b, atol=1e-9 * scale):
                raise ParametricProgramError(
                    f"family {self.name!r} is not affine in theta "
                    f"(midpoint deviation {max_difference:.2e})"
                )
        return self

    # ------------------------------------------------------------------
    def bind(self, theta: float) -> ConicProblem:
        """Assemble the conic problem at ``theta`` — a pure array operation."""
        self.compile()
        theta = float(theta)
        data = self._data0 + theta * self._data1
        A = sp.csr_matrix((data, self._indices, self._indptr), shape=self._shape)
        self.num_binds += 1
        return ConicProblem(c=self._c, A=A, b=self._b0 + theta * self._b1,
                            dims=self._dims, layout=self._layout)

    def bind_many(self, thetas: Sequence[float]) -> List[ConicProblem]:
        """Assemble one problem per value — feed these to ``solve_conic_problems``."""
        return [self.bind(theta) for theta in thetas]

    # ------------------------------------------------------------------
    def interpret(self, result: SolverResult,
                  with_certificates: bool = False) -> SOSSolution:
        """Map a solver result of a bound problem back onto the template.

        The variable layout is identical across the family, so the canonical
        program's decision-variable extraction applies verbatim.  Gram
        certificates are skipped by default (the template's numeric data is
        the first probe's, not the bound ``theta``'s).
        """
        return self.program.interpret_result(result, with_certificates=with_certificates)


def _union_align_many(matrices: Sequence[sp.csr_matrix],
                      shape: Tuple[int, int]
                      ) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Expand ``k`` matrices onto their shared union sparsity pattern.

    Generalises :meth:`ParametricSOSProgram._union_align` from two matrices
    to any number: every output data vector indexes the same concatenated
    COO pattern (explicit zeros retained where only the others have an
    entry), so affine combinations are plain ``np.ndarray`` arithmetic.
    """
    coos = [m.tocoo() for m in matrices]
    rows = np.concatenate([c.row for c in coos])
    cols = np.concatenate([c.col for c in coos])
    total = rows.shape[0]
    aligned: List[sp.csr_matrix] = []
    offset = 0
    for coo in coos:
        data = np.zeros(total)
        data[offset:offset + coo.nnz] = coo.data
        offset += coo.nnz
        matrix = sp.csr_matrix((data, (rows, cols)), shape=shape)
        matrix.sum_duplicates()
        matrix.sort_indices()
        aligned.append(matrix)
    indptr, indices = aligned[0].indptr, aligned[0].indices
    for matrix in aligned[1:]:
        if not (np.array_equal(indptr, matrix.indptr)
                and np.array_equal(indices, matrix.indices)):
            raise ParametricProgramError("union sparsity alignment failed")
    return indptr, indices, [m.data for m in aligned]


class MultiParametricSOSProgram:
    """A family of SOS programs over several named scalar axes, compiled once.

    The multi-axis generalisation of :class:`ParametricSOSProgram`: ``build``
    maps a full parameter dict ``{axis: value}`` to an :class:`SOSProgram`
    (or ``(program, payload)``) of identical structure, with every axis
    entering the conic data affinely and independently,

        A(p) = A0 + Σ_k t_k·ΔA_k,      t_k = (p_k − base_k)/step_k.

    The decomposition needs ``d+1`` structural compiles (base point plus one
    displaced point per axis); a final probe displaced along *all* axes at
    once verifies joint affinity — cross terms like ``p_1·p_2`` in the data
    make that probe deviate and raise :class:`ParametricProgramError`, which
    callers (the sweep planner) catch to fall back to per-point rebuilds.
    After :meth:`compile`, :meth:`bind` is a pure array operation.
    """

    def __init__(self, build: Callable[[Dict[str, float]], BuildResult],
                 base: Mapping[str, float],
                 steps: Optional[Mapping[str, float]] = None,
                 check_affinity: bool = True,
                 name: str = "multi_parametric_sos",
                 context: Optional[object] = None):
        self.axes: Tuple[str, ...] = tuple(sorted(base))
        if not self.axes:
            raise ValueError("at least one parameter axis is required")
        self.name = name
        self.context = context
        self._build = build
        self._base = {axis: float(base[axis]) for axis in self.axes}
        self._steps = {}
        for axis in self.axes:
            step = float((steps or {}).get(axis, 0.0))
            if step == 0.0:
                # A sensible displacement scale when the caller gave none:
                # the base magnitude (parameters are strictly positive in
                # the PLL models) or unity at a zero base.
                step = abs(self._base[axis]) or 1.0
            self._steps[axis] = step
        self._check_affinity = check_affinity
        self._compiled = False
        self._program: Optional[SOSProgram] = None
        self._payload: Any = None
        #: Full structural compiles performed (``len(axes)+1``, plus one for
        #: the affinity probe) — every :meth:`bind` afterwards adds zero.
        self.num_structure_compiles = 0
        #: Number of :meth:`bind` calls served from the affine decomposition.
        self.num_binds = 0

    # ------------------------------------------------------------------
    @property
    def program(self) -> SOSProgram:
        """The canonical template program (built at the base point)."""
        self.compile()
        assert self._program is not None
        return self._program

    @property
    def payload(self) -> Any:
        self.compile()
        return self._payload

    def _build_at(self, point: Mapping[str, float]
                  ) -> Tuple[SOSProgram, Any, ConicProblem]:
        built = self._build(dict(point))
        if isinstance(built, tuple):
            program, payload = built
        else:
            program, payload = built, None
        if self.context is not None and program.context is None:
            program.context = self.context
        problem = program.compile()[0].build()
        self.num_structure_compiles += 1
        return program, payload, problem

    def compile(self) -> "MultiParametricSOSProgram":
        """Perform the structural compiles and the affine decomposition (once)."""
        if self._compiled:
            return self
        program0, payload, problem0 = self._build_at(self._base)
        displaced: List[ConicProblem] = []
        for axis in self.axes:
            point = dict(self._base)
            point[axis] += self._steps[axis]
            _, _, problem_k = self._build_at(point)
            if problem_k.dims != problem0.dims \
                    or problem_k.A.shape != problem0.A.shape \
                    or problem_k.layout != problem0.layout:
                raise ParametricProgramError(
                    f"family {self.name!r} is not structurally stable along "
                    f"axis {axis!r}: {problem0.describe()} vs {problem_k.describe()}")
            if not np.allclose(problem_k.c, problem0.c):
                raise ParametricProgramError(
                    f"family {self.name!r} has a parameter-dependent cost "
                    f"vector along axis {axis!r}; only affine constraint "
                    "data is supported")
            displaced.append(problem_k)

        indptr, indices, datas = _union_align_many(
            [problem0.A] + [p.A for p in displaced], problem0.A.shape)
        self._shape = problem0.A.shape
        self._indptr, self._indices = indptr, indices
        self._data0 = datas[0]
        self._data_slopes = [datas[k + 1] - datas[0]
                             for k in range(len(self.axes))]
        self._b0 = problem0.b
        self._b_slopes = [p.b - problem0.b for p in displaced]
        self._c = problem0.c
        self._dims = problem0.dims
        self._layout = problem0.layout
        self._program = program0
        self._payload = payload
        self._compiled = True

        if self._check_affinity:
            probe = {axis: self._base[axis] + 0.5 * self._steps[axis]
                     for axis in self.axes}
            _, _, problem_p = self._build_at(probe)
            bound = self.bind(probe)
            self.num_binds -= 1  # verification probe, not a user bind
            scale = 1.0 + float(np.abs(bound.A.data).max(initial=0.0))
            difference = abs(problem_p.A - bound.A)
            max_difference = float(difference.data.max(initial=0.0)) if difference.nnz else 0.0
            if max_difference > 1e-9 * scale or \
                    not np.allclose(problem_p.b, bound.b, atol=1e-9 * scale):
                raise ParametricProgramError(
                    f"family {self.name!r} is not jointly affine in "
                    f"{list(self.axes)} (probe deviation {max_difference:.2e})")
        return self

    # ------------------------------------------------------------------
    def bind(self, params: Mapping[str, float]) -> ConicProblem:
        """Assemble the conic problem at a parameter point — pure array work."""
        self.compile()
        data = self._data0.copy()
        b = self._b0.copy()
        for k, axis in enumerate(self.axes):
            t = (float(params[axis]) - self._base[axis]) / self._steps[axis]
            if t != 0.0:
                data += t * self._data_slopes[k]
                b += t * self._b_slopes[k]
        A = sp.csr_matrix((data, self._indices, self._indptr), shape=self._shape)
        self.num_binds += 1
        return ConicProblem(c=self._c, A=A, b=b, dims=self._dims,
                            layout=self._layout)

    def interpret(self, result: SolverResult,
                  with_certificates: bool = False) -> SOSSolution:
        """Map a bound problem's solver result back onto the template program."""
        return self.program.interpret_result(result, with_certificates=with_certificates)
