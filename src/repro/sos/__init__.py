"""Sum-of-Squares programming layer (the role of YALMIP's SOS module in the paper)."""

from .program import (
    EqualityConstraint,
    ScalarConstraint,
    SOSCertificate,
    SOSConstraint,
    SOSProgram,
    SOSProgramError,
    SOSSolution,
    compile_counters,
    reset_compile_counters,
)
from .parametric import (MultiParametricSOSProgram, ParametricProgramError,
                         ParametricSOSProgram)
from .sprocedure import (
    SemialgebraicSet,
    SProcedureCertificate,
    add_nonnegativity_on_set,
    add_positivity_on_set,
    ball_constraint,
    interval_constraints,
)
from .validation import (
    ValidationReport,
    minimum_on_level_set,
    sample_box,
    sample_set,
    validate_decrease_along_field,
    validate_nonnegativity,
)

__all__ = [
    "SOSProgram",
    "SOSProgramError",
    "SOSSolution",
    "ParametricSOSProgram",
    "MultiParametricSOSProgram",
    "ParametricProgramError",
    "compile_counters",
    "reset_compile_counters",
    "SOSConstraint",
    "SOSCertificate",
    "EqualityConstraint",
    "ScalarConstraint",
    "SemialgebraicSet",
    "SProcedureCertificate",
    "add_positivity_on_set",
    "add_nonnegativity_on_set",
    "interval_constraints",
    "ball_constraint",
    "ValidationReport",
    "validate_nonnegativity",
    "validate_decrease_along_field",
    "minimum_on_level_set",
    "sample_box",
    "sample_set",
]
