"""Sum-of-Squares programming layer (the role of YALMIP's SOS module in the paper)."""

from .program import (
    EqualityConstraint,
    ScalarConstraint,
    SOSCertificate,
    SOSConstraint,
    SOSProgram,
    SOSProgramError,
    SOSSolution,
)
from .sprocedure import (
    SemialgebraicSet,
    SProcedureCertificate,
    add_nonnegativity_on_set,
    add_positivity_on_set,
    ball_constraint,
    interval_constraints,
)
from .validation import (
    ValidationReport,
    minimum_on_level_set,
    sample_box,
    sample_set,
    validate_decrease_along_field,
    validate_nonnegativity,
)

__all__ = [
    "SOSProgram",
    "SOSProgramError",
    "SOSSolution",
    "SOSConstraint",
    "SOSCertificate",
    "EqualityConstraint",
    "ScalarConstraint",
    "SemialgebraicSet",
    "SProcedureCertificate",
    "add_positivity_on_set",
    "add_nonnegativity_on_set",
    "interval_constraints",
    "ball_constraint",
    "ValidationReport",
    "validate_nonnegativity",
    "validate_decrease_along_field",
    "minimum_on_level_set",
    "sample_box",
    "sample_set",
]
