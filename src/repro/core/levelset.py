"""Level-curve maximisation (second SOS program of §3).

Given a Lyapunov certificate ``V_q`` and the mode domain
``D_q = {x : g_1 >= 0, ..., g_k >= 0}``, find the largest ``c_q`` such that
the sub-level set ``{V_q <= c_q}`` is contained in ``D_q``.  Containment in
each ``{g_j >= 0}`` is certified through Lemma 1; since the certificate is
bilinear in ``(c, multipliers)`` the maximisation is done by bisection on
``c`` (each feasibility query is a linear SOS program).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CertificateError
from ..polynomial import Polynomial
from ..sos import SemialgebraicSet, SOSProgram
from ..utils import get_logger
from .inclusion import check_sublevel_inclusion

LOGGER = get_logger("core.levelset")


@dataclass
class LevelSetOptions:
    """Options of the level-curve maximisation."""

    multiplier_degree: int = 2
    bisection_tolerance: float = 1e-3
    max_bisection_iterations: int = 40
    initial_upper_bound: Optional[float] = None
    solver_backend: Optional[str] = None
    solver_settings: Dict[str, object] = field(default_factory=dict)
    #: Warm-start each bisection query from the previous level's iterates
    #: (all queries of one maximisation share the same SDP structure).
    warm_start: bool = True


@dataclass
class MaximizedLevelSet:
    """The maximised sub-level set ``{certificate <= level}`` of one mode."""

    mode_name: str
    certificate: Polynomial
    level: float
    iterations: int
    certified_levels: List[float] = field(default_factory=list)
    rejected_levels: List[float] = field(default_factory=list)

    @property
    def sublevel_polynomial(self) -> Polynomial:
        """Polynomial whose 0-sub-level set is the maximised level set."""
        return self.certificate - self.level

    def contains(self, state: Sequence[float], tolerance: float = 1e-9) -> bool:
        return self.certificate.evaluate(state) <= self.level + tolerance


class LevelSetMaximizer:
    """Maximise ``c`` with ``{V <= c} ⊆ D`` by bisection over Lemma-1 queries."""

    def __init__(self, options: Optional[LevelSetOptions] = None):
        self.options = options or LevelSetOptions()
        # Per-inequality warm-start data carried across bisection levels
        # (reset at the start of each maximisation).
        self._warm_starts: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    def _level_is_certified(self, certificate: Polynomial, level: float,
                            domain: SemialgebraicSet) -> bool:
        """One feasibility query: ``{V - level <= 0} ⊆ {g_j >= 0}`` for every j."""
        inner = certificate - level
        for k, constraint in enumerate(domain.inequalities):
            inclusion = check_sublevel_inclusion(
                inner, -constraint,
                multiplier_degree=self.options.multiplier_degree,
                solver_backend=self.options.solver_backend,
                warm_start=self._warm_starts.get(k) if self.options.warm_start else None,
                **self.options.solver_settings,
            )
            if self.options.warm_start and inclusion.warm_start_data is not None:
                self._warm_starts[k] = inclusion.warm_start_data
            if not inclusion.holds:
                return False
        return True

    def _default_upper_bound(self, certificate: Polynomial,
                             domain: SemialgebraicSet,
                             bounds: Optional[Sequence[Tuple[float, float]]]) -> float:
        """A sampling-based upper bound: min of V on the domain boundary-ish samples."""
        if bounds is None:
            return 10.0 * max(certificate.max_abs_coefficient(), 1.0)
        rng = np.random.default_rng(7)
        lows = np.array([b[0] for b in bounds])
        highs = np.array([b[1] for b in bounds])
        points = rng.uniform(lows, highs, size=(4000, len(bounds)))
        outside = ~domain.contains_many(points)
        if not np.any(outside):
            values = certificate.evaluate_many(points)
            return float(values.max()) * 2.0 + 1.0
        return float(certificate.evaluate_many(points[outside]).min())

    # ------------------------------------------------------------------
    def maximize(self, mode_name: str, certificate: Polynomial,
                 domain: SemialgebraicSet,
                 bounds: Optional[Sequence[Tuple[float, float]]] = None) -> MaximizedLevelSet:
        """Bisect for the largest certified level of one certificate."""
        options = self.options
        self._warm_starts = {}
        upper = options.initial_upper_bound
        if upper is None:
            upper = self._default_upper_bound(certificate, domain, bounds)
        upper = max(float(upper), options.bisection_tolerance)
        lower = 0.0

        certified: List[float] = []
        rejected: List[float] = []

        # Ensure the upper end is genuinely infeasible (otherwise expand).
        expansions = 0
        while self._level_is_certified(certificate, upper, domain):
            certified.append(upper)
            lower = upper
            upper *= 2.0
            expansions += 1
            if expansions > 12:
                break

        iterations = expansions
        best = lower
        while (upper - lower) > options.bisection_tolerance and \
                iterations < options.max_bisection_iterations:
            mid = 0.5 * (lower + upper)
            iterations += 1
            if self._level_is_certified(certificate, mid, domain):
                certified.append(mid)
                best = mid
                lower = mid
            else:
                rejected.append(mid)
                upper = mid

        if best <= 0.0:
            raise CertificateError(
                f"level-curve maximisation for {mode_name!r} found no positive certified level"
            )
        return MaximizedLevelSet(
            mode_name=mode_name, certificate=certificate, level=best,
            iterations=iterations, certified_levels=certified, rejected_levels=rejected,
        )

    # ------------------------------------------------------------------
    def maximize_all(self, certificates: Dict[str, Polynomial],
                     domains: Dict[str, SemialgebraicSet],
                     bounds: Optional[Sequence[Tuple[float, float]]] = None,
                     ) -> Dict[str, MaximizedLevelSet]:
        """Maximise the level curve of every mode certificate."""
        results: Dict[str, MaximizedLevelSet] = {}
        for mode_name, certificate in certificates.items():
            domain = domains[mode_name]
            start = time.perf_counter()
            results[mode_name] = self.maximize(mode_name, certificate, domain, bounds)
            LOGGER.info("level set for %s: c=%.4g (%.2fs)", mode_name,
                        results[mode_name].level, time.perf_counter() - start)
        return results
