"""Level-curve maximisation (second SOS program of §3).

Given a Lyapunov certificate ``V_q`` and the mode domain
``D_q = {x : g_1 >= 0, ..., g_k >= 0}``, find the largest ``c_q`` such that
the sub-level set ``{V_q <= c_q}`` is contained in ``D_q``.  Containment in
each ``{g_j >= 0}`` is certified through Lemma 1; since the certificate is
bilinear in ``(c, multipliers)`` the maximisation probes candidate levels.

Two strategies are available:

* ``"batched"`` (default): one :class:`ParametricInclusionFamily` per domain
  inequality is compiled **once**; each round binds ``K`` candidate levels
  (K-section — the bracket shrinks by ``K+1`` per round instead of 2) and
  solves all of them through the batched ADMM engine with warm starts carried
  between rounds and per-problem convergence masking.
* ``"serial"``: the original per-level path — a fresh Lemma-1 program per
  probe — kept as the reference baseline and for non-ADMM backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CertificateError
from ..polynomial import Polynomial
from ..sdp import SolveContext, cone_for_relaxation, relaxation_ladder
from ..sos import SemialgebraicSet
from ..utils import get_logger
from .config import StageConfig
from .inclusion import ParametricInclusionFamily, check_sublevel_inclusion

LOGGER = get_logger("core.levelset")

#: Cap on the upper-bound doublings of the expansion phase (as in the serial
#: bisection: ``upper * 2**12`` is the largest bracket ever probed).
_MAX_EXPANSIONS = 12


@dataclass
class LevelSetOptions(StageConfig):
    """Options of the level-curve maximisation.

    Inherits the shared stage knobs (``multiplier_degree``,
    ``solver_backend``, ``solver_settings``, ``relaxation``) from
    :class:`~repro.core.config.StageConfig`; a relaxation rung that
    certifies no positive level escalates to the next cone of the ladder.
    """

    bisection_tolerance: float = 1e-3
    max_bisection_iterations: int = 40
    initial_upper_bound: Optional[float] = None
    #: Warm-start each query from the previous round's iterates at the same
    #: slot (all queries of one maximisation share the same SDP structure).
    warm_start: bool = True
    #: ``"batched"`` — parametric compile + K-section through the batch ADMM
    #: engine; ``"serial"`` — the per-level reference path.
    strategy: str = "batched"
    #: Number of candidate levels probed per batched round (the ``K`` of
    #: K-section); the bracket shrinks by ``K+1`` per round.
    levels_per_round: int = 6
    #: Verify the affine-in-theta decomposition with a third structural
    #: compile when building each parametric family.
    check_affinity: bool = True


@dataclass
class MaximizedLevelSet:
    """The maximised sub-level set ``{certificate <= level}`` of one mode."""

    mode_name: str
    certificate: Polynomial
    level: float
    iterations: int
    certified_levels: List[float] = field(default_factory=list)
    rejected_levels: List[float] = field(default_factory=list)
    #: Relaxation whose certificates produced ``level`` (``"dsos"``,
    #: ``"sdsos"`` or ``"sos"``; under ``"auto"`` the rung that succeeded).
    relaxation: str = "sos"

    @property
    def sublevel_polynomial(self) -> Polynomial:
        """Polynomial whose 0-sub-level set is the maximised level set."""
        return self.certificate - self.level

    def contains(self, state: Sequence[float], tolerance: float = 1e-9) -> bool:
        return self.certificate.evaluate(state) <= self.level + tolerance


class LevelSetMaximizer:
    """Maximise ``c`` with ``{V <= c} ⊆ D`` over Lemma-1 queries."""

    def __init__(self, options: Optional[LevelSetOptions] = None,
                 context: Optional[SolveContext] = None):
        self.options = options or LevelSetOptions()
        self.context = context
        # Per-inequality warm-start data carried across bisection levels
        # (reset at the start of each maximisation).  The batched path keys
        # by (family index -> {level: data}); the serial path by family index.
        self._warm_starts: Dict[object, object] = {}
        self._rejections: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _level_is_certified(self, certificate: Polynomial, level: float,
                            domain: SemialgebraicSet, cone: str = "psd") -> bool:
        """One feasibility query: ``{V - level <= 0} ⊆ {g_j >= 0}`` for every j."""
        inner = certificate - level
        for k, constraint in enumerate(domain.inequalities):
            inclusion = check_sublevel_inclusion(
                inner, -constraint,
                multiplier_degree=self.options.multiplier_degree,
                solver_backend=self.options.solver_backend,
                warm_start=self._warm_starts.get(k) if self.options.warm_start else None,
                cone=cone,
                context=self.context,
                **self.options.solver_settings,
            )
            if self.options.warm_start and inclusion.warm_start_data is not None:
                self._warm_starts[k] = inclusion.warm_start_data
            if not inclusion.holds:
                return False
        return True

    def _default_upper_bound(self, certificate: Polynomial,
                             domain: SemialgebraicSet,
                             bounds: Optional[Sequence[Tuple[float, float]]]) -> float:
        """A sampling-based upper bound: min of V on the domain boundary-ish samples."""
        if bounds is None:
            return 10.0 * max(certificate.max_abs_coefficient(), 1.0)
        rng = np.random.default_rng(7)
        lows = np.array([b[0] for b in bounds])
        highs = np.array([b[1] for b in bounds])
        points = rng.uniform(lows, highs, size=(4000, len(bounds)))
        outside = ~domain.contains_many(points)
        if not np.any(outside):
            values = certificate.evaluate_many(points)
            return float(values.max()) * 2.0 + 1.0
        return float(certificate.evaluate_many(points[outside]).min())

    # ------------------------------------------------------------------
    def maximize(self, mode_name: str, certificate: Polynomial,
                 domain: SemialgebraicSet,
                 bounds: Optional[Sequence[Tuple[float, float]]] = None) -> MaximizedLevelSet:
        """Find the largest certified level of one certificate.

        Walks the relaxation ladder of ``options.relaxation``: for every
        rung the whole maximisation runs under that Gram cone; a rung that
        certifies no positive level escalates to the next (more expressive,
        more expensive) one.  Under the default ``"sos"`` the ladder has a
        single rung and the behaviour is the classical full-SOS search.
        """
        ladder = relaxation_ladder(self.options.relaxation)
        last_error: Optional[CertificateError] = None
        for relaxation in ladder:
            cone = cone_for_relaxation(relaxation)
            try:
                if self.options.strategy == "serial":
                    result = self._maximize_serial(mode_name, certificate,
                                                   domain, bounds, cone)
                else:
                    result = self._maximize_batched(mode_name, certificate,
                                                    domain, bounds, cone)
            except CertificateError as exc:
                last_error = exc
                LOGGER.info("level set for %s: relaxation %s certified no "
                            "positive level; escalating", mode_name, relaxation)
                continue
            result.relaxation = relaxation
            return result
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # Batched K-section path
    # ------------------------------------------------------------------
    def _nearest_warm_start(self, family_index: int, level: float) -> Optional[dict]:
        """Warm-start data of the closest previously solved level of a family.

        Solutions vary continuously in the level parameter, so the nearest
        solved neighbour is the best available initial iterate; K-section
        rounds shrink the bracket by ``K+1`` per round, making the neighbours
        progressively tighter.
        """
        store = self._warm_starts.get(family_index)
        if not store:
            return None
        nearest = min(store, key=lambda theta: abs(theta - level))
        return store[nearest]

    def _certify_batch(self, families: List[ParametricInclusionFamily],
                       levels: np.ndarray) -> np.ndarray:
        """Feasibility of each level against every inequality, batch-solved.

        One batch per inequality family (each K levels wide), processed in
        decreasing order of past rejections with per-level pruning: the
        binding constraint usually rejects first, so the remaining families
        only see the surviving levels — mirroring the serial path's
        short-circuit while keeping each solve inside the batched engine.
        """
        from ..sdp import solve_conic_problems

        options = self.options
        ok = np.ones(levels.shape[0], dtype=bool)
        order = sorted(range(len(families)),
                       key=lambda j: -self._rejections.get(j, 0))
        for j in order:
            alive = np.flatnonzero(ok)
            if alive.size == 0:
                break
            family = families[j]
            problems = [family.bind(float(levels[i])) for i in alive]
            starts = [self._nearest_warm_start(j, float(levels[i]))
                      if options.warm_start else None for i in alive]
            results = solve_conic_problems(
                problems, backend=options.solver_backend, warm_starts=starts,
                context=self.context, **options.solver_settings)
            for position, i in enumerate(alive):
                result = results[position]
                if options.warm_start:
                    warm = result.info.get("warm_start_data")
                    if warm is not None:
                        self._warm_starts.setdefault(j, {})[float(levels[i])] = warm
                if not (result.status.is_success and result.x is not None):
                    ok[i] = False
                    self._rejections[j] = self._rejections.get(j, 0) + 1
        return ok

    @staticmethod
    def _certified_prefix(flags: np.ndarray) -> int:
        """Length of the leading certified run (the monotone interpretation)."""
        rejected = np.flatnonzero(~flags)
        return int(rejected[0]) if rejected.size else int(flags.shape[0])

    def _maximize_batched(self, mode_name: str, certificate: Polynomial,
                          domain: SemialgebraicSet,
                          bounds: Optional[Sequence[Tuple[float, float]]],
                          cone: str = "psd") -> MaximizedLevelSet:
        options = self.options
        self._warm_starts = {}
        self._rejections = {}
        upper = options.initial_upper_bound
        if upper is None:
            upper = self._default_upper_bound(certificate, domain, bounds)
        upper = max(float(upper), options.bisection_tolerance)
        lower = 0.0
        levels_per_round = max(1, int(options.levels_per_round))

        families = [
            ParametricInclusionFamily(
                certificate, -constraint,
                multiplier_degree=options.multiplier_degree,
                check_affinity=options.check_affinity,
                cone=cone,
                context=self.context,
            ).compile()
            for constraint in domain.inequalities
        ]

        certified: List[float] = []
        rejected: List[float] = []
        iterations = 0

        if not families:
            # No inequalities: every level is trivially certified; mirror the
            # serial path's expansion cap.
            lower = upper * (2.0 ** _MAX_EXPANSIONS)
            certified.append(lower)
            iterations = _MAX_EXPANSIONS

        # Phase 1 — probe the initial upper bound once (this also discovers
        # which inequality binds, ordering later rounds); only when it is
        # certified, expand with geometric ladders probed one batch per round.
        bracket_open = False
        if families:
            flags = self._certify_batch(families, np.array([upper]))
            iterations += 1
            if flags[0]:
                certified.append(upper)
                lower = upper
                bracket_open = True
            else:
                rejected.append(upper)
        expansions = 1
        while bracket_open and expansions <= _MAX_EXPANSIONS:
            count = min(levels_per_round, _MAX_EXPANSIONS - expansions + 1)
            ladder = lower * (2.0 ** np.arange(1, count + 1))
            flags = self._certify_batch(families, ladder)
            iterations += 1
            prefix = self._certified_prefix(flags)
            certified.extend(float(level) for level in ladder[:prefix])
            if prefix > 0:
                lower = float(ladder[prefix - 1])
            if prefix < count:
                rejected.append(float(ladder[prefix]))
                upper = float(ladder[prefix])
                bracket_open = False
            else:
                expansions += count
        if bracket_open:
            # Expansion cap reached with everything certified.
            upper = lower * 2.0

        # Phase 2 — K-section: probe K interior levels per round, shrinking
        # the bracket by (K+1)x per round.
        best = lower
        while (upper - lower) > options.bisection_tolerance and \
                iterations < options.max_bisection_iterations and families:
            span = upper - lower
            levels = lower + span * (np.arange(1, levels_per_round + 1)
                                     / (levels_per_round + 1.0))
            flags = self._certify_batch(families, levels)
            iterations += 1
            prefix = self._certified_prefix(flags)
            certified.extend(float(level) for level in levels[:prefix])
            rejected.extend(float(level) for level in levels[prefix:])
            if prefix > 0:
                best = lower = float(levels[prefix - 1])
            if prefix < levels_per_round:
                upper = float(levels[prefix])

        if best <= 0.0:
            raise CertificateError(
                f"level-curve maximisation for {mode_name!r} found no positive certified level"
            )
        return MaximizedLevelSet(
            mode_name=mode_name, certificate=certificate, level=best,
            iterations=iterations, certified_levels=certified, rejected_levels=rejected,
        )

    # ------------------------------------------------------------------
    # Serial reference path (the original per-level bisection)
    # ------------------------------------------------------------------
    def _maximize_serial(self, mode_name: str, certificate: Polynomial,
                         domain: SemialgebraicSet,
                         bounds: Optional[Sequence[Tuple[float, float]]],
                         cone: str = "psd") -> MaximizedLevelSet:
        """Bisect for the largest certified level of one certificate."""
        options = self.options
        self._warm_starts = {}
        upper = options.initial_upper_bound
        if upper is None:
            upper = self._default_upper_bound(certificate, domain, bounds)
        upper = max(float(upper), options.bisection_tolerance)
        lower = 0.0

        certified: List[float] = []
        rejected: List[float] = []

        # Ensure the upper end is genuinely infeasible (otherwise expand).
        expansions = 0
        while self._level_is_certified(certificate, upper, domain, cone):
            certified.append(upper)
            lower = upper
            upper *= 2.0
            expansions += 1
            if expansions > _MAX_EXPANSIONS:
                break

        iterations = expansions
        best = lower
        while (upper - lower) > options.bisection_tolerance and \
                iterations < options.max_bisection_iterations:
            mid = 0.5 * (lower + upper)
            iterations += 1
            if self._level_is_certified(certificate, mid, domain, cone):
                certified.append(mid)
                best = mid
                lower = mid
            else:
                rejected.append(mid)
                upper = mid

        if best <= 0.0:
            raise CertificateError(
                f"level-curve maximisation for {mode_name!r} found no positive certified level"
            )
        return MaximizedLevelSet(
            mode_name=mode_name, certificate=certificate, level=best,
            iterations=iterations, certified_levels=certified, rejected_levels=rejected,
        )

    # ------------------------------------------------------------------
    def maximize_all(self, certificates: Dict[str, Polynomial],
                     domains: Dict[str, SemialgebraicSet],
                     bounds: Optional[Sequence[Tuple[float, float]]] = None,
                     ) -> Dict[str, MaximizedLevelSet]:
        """Maximise the level curve of every mode certificate.

        Every mode runs through the configured strategy — with the default
        batched engine each mode compiles its inclusion families once and
        probes its whole level ladder in batched rounds.
        """
        results: Dict[str, MaximizedLevelSet] = {}
        for mode_name, certificate in certificates.items():
            domain = domains[mode_name]
            start = time.perf_counter()
            results[mode_name] = self.maximize(mode_name, certificate, domain, bounds)
            LOGGER.info("level set for %s: c=%.4g (%s, %.2fs)", mode_name,
                        results[mode_name].level, self.options.strategy,
                        time.perf_counter() - start)
        return results
