"""Escape certificates (Proposition 1 and Algorithm 1 line 15 of the paper).

For a compact set ``T`` and mode field ``f_q``, a differentiable certificate
``E`` with ``∇E · f_q <= -delta`` (``delta > 0``) everywhere on ``T`` proves
that every trajectory flowing in that mode leaves ``T`` in finite time
(bounded by ``(max_T E - min_T E) / delta``).  The paper uses this for the
sub-region where bounded advection stays inconclusive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CertificateError
from ..polynomial import Polynomial
from ..sdp import SolveContext, cone_for_relaxation, relaxation_ladder
from ..sos import (
    SemialgebraicSet,
    SOSProgram,
    add_positivity_on_set,
    validate_nonnegativity,
)
from ..utils import get_logger
from .config import StageConfig

LOGGER = get_logger("core.escape")


@dataclass
class EscapeOptions(StageConfig):
    """Options of the escape-certificate search.

    Inherits the shared stage knobs (``multiplier_degree``,
    ``solver_backend``, ``solver_settings``, ``relaxation``) from
    :class:`~repro.core.config.StageConfig`; under ``"auto"`` the search
    tries the cheap cones first and escalates when it is infeasible or the
    sampling validation fails.
    """

    certificate_degree: int = 2
    decrease_rate: float = 1e-2          # the delta of Proposition 1
    validate_samples: int = 1500
    validation_tolerance: float = 1e-4


@dataclass
class EscapeCertificate:
    """A certified escape function for one mode / region pair."""

    mode_name: str
    certificate: Polynomial
    decrease_rate: float
    region: SemialgebraicSet
    synthesis_time: float
    validation_passed: bool = True

    def escape_time_bound(self, bounds: Sequence[Tuple[float, float]],
                          num_samples: int = 4000, seed: int = 0) -> float:
        """Sampled upper bound ``(max_T E - min_T E) / delta`` on the escape time."""
        rng = np.random.default_rng(seed)
        lows = np.array([b[0] for b in bounds])
        highs = np.array([b[1] for b in bounds])
        points = rng.uniform(lows, highs, size=(num_samples, len(bounds)))
        mask = np.array([self.region.contains(p) for p in points])
        if not np.any(mask):
            return 0.0
        values = self.certificate.evaluate_many(points[mask])
        return float((values.max() - values.min()) / self.decrease_rate)


class EscapeCertificateSynthesizer:
    """Search an escape certificate with an SOS feasibility program."""

    def __init__(self, options: Optional[EscapeOptions] = None,
                 context: Optional[SolveContext] = None):
        self.options = options or EscapeOptions()
        self.context = context

    def synthesize(self, mode_name: str, vector_field: Sequence[Polynomial],
                   region: SemialgebraicSet,
                   bounds: Optional[Sequence[Tuple[float, float]]] = None,
                   ) -> EscapeCertificate:
        """Find ``E`` with ``∇E · f <= -delta`` on ``region``.

        Walks the relaxation ladder of ``options.relaxation``: a cheap rung
        is accepted only when the search is feasible and the sampling
        validation passes; otherwise the next (more expressive) cone is
        tried.  The final rung's outcome is authoritative — its certificate
        is returned even when its validation failed, and its
        :class:`CertificateError` propagates (matching the single-rung
        behaviour; the SOS relaxations being sound but incomplete, a failed
        search does not prove that no escape certificate exists).  A cheap
        rung's rejected certificate is never returned.
        """
        ladder = relaxation_ladder(self.options.relaxation)
        for index, relaxation in enumerate(ladder):
            final = index == len(ladder) - 1
            try:
                result = self._synthesize_with(mode_name, vector_field, region,
                                               bounds, relaxation)
            except CertificateError:
                if final:
                    raise
                continue
            if result.validation_passed or final:
                return result
            LOGGER.info("escape certificate for %s under %s failed validation; "
                        "escalating", mode_name, relaxation)
        raise AssertionError("unreachable: the final ladder rung returns or raises")

    def _synthesize_with(self, mode_name: str,
                         vector_field: Sequence[Polynomial],
                         region: SemialgebraicSet,
                         bounds: Optional[Sequence[Tuple[float, float]]],
                         relaxation: str) -> EscapeCertificate:
        options = self.options
        start = time.perf_counter()
        variables = region.variables

        program = SOSProgram(name=f"escape_{mode_name}",
                             default_cone=cone_for_relaxation(relaxation),
                             context=self.context)
        certificate = program.new_polynomial_variable(
            variables, options.certificate_degree, name="E", min_degree=1)
        lie = certificate.lie_derivative(
            [f.with_variables(variables) for f in vector_field])
        # -lie - delta >= 0 on the region.
        add_positivity_on_set(
            program, -lie - options.decrease_rate, region,
            multiplier_degree=options.multiplier_degree,
            name=f"escape_decrease_{mode_name}",
        )
        solution = program.solve(backend=options.solver_backend,
                                 **options.solver_settings)
        if not solution.is_success:
            raise CertificateError(
                f"no escape certificate found for {mode_name!r}: {solution.status.value}"
            )
        certificate_poly = solution.polynomial(certificate).truncate(1e-12)

        validation_passed = True
        if options.validate_samples > 0 and bounds is not None:
            lie_numeric = certificate_poly.lie_derivative(
                [f.with_variables(variables) for f in vector_field])
            report = validate_nonnegativity(
                -lie_numeric - options.decrease_rate * 0.5, region, bounds,
                num_samples=options.validate_samples,
                tolerance=options.validation_tolerance,
                name=f"escape[{mode_name}]",
            )
            validation_passed = report.passed

        elapsed = time.perf_counter() - start
        LOGGER.info("escape certificate for %s found in %.2fs", mode_name, elapsed)
        return EscapeCertificate(
            mode_name=mode_name,
            certificate=certificate_poly,
            decrease_rate=options.decrease_rate,
            region=region,
            synthesis_time=elapsed,
            validation_passed=validation_passed,
        )


def escape_region_from_advection(final_set: Polynomial,
                                 invariant_sublevel: Polynomial,
                                 region_box: Optional[SemialgebraicSet] = None,
                                 ) -> SemialgebraicSet:
    """The paper's inconclusive region ``X2_adv \\ (X1 ∩ X2_adv)``.

    Semialgebraically: ``{final_set <= 0} ∩ {invariant_sublevel >= 0}`` —
    inside the last advected set but not (certifiably) inside the attractive
    invariant — optionally intersected with the region-of-interest box.
    """
    variables = final_set.variables.union(invariant_sublevel.variables)
    inequalities = [(-final_set).with_variables(variables),
                    invariant_sublevel.with_variables(variables)]
    region = SemialgebraicSet(variables, inequalities=tuple(inequalities),
                              name="escape_region")
    if region_box is not None:
        box = SemialgebraicSet(
            variables,
            inequalities=tuple(p.with_variables(variables)
                               for p in region_box.inequalities),
            equalities=tuple(p.with_variables(variables)
                             for p in region_box.equalities),
            name=region_box.name,
        )
        region = region.intersect(box)
    return region
