"""End-to-end inevitability verification (the paper's methodology, §3).

The :class:`InevitabilityVerifier` chains the four stages of the paper:

1. multiple Lyapunov certificate synthesis (Property 1, Theorem 1/2),
2. level-curve maximisation producing the attractive invariant ``X1``,
3. bounded advection of the outer set ``X2`` per pumping mode (Algorithm 1),
4. escape-certificate search for modes where advection stays inconclusive,

and produces a :class:`~repro.core.report.VerificationReport` with the
per-step timing breakdown of Table 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


from ..exceptions import CertificateError
from ..pll.model import MODE_IDLE, PLLVerificationModel
from ..sdp import RELAXATIONS, SolveContext, cone_for_relaxation, relaxation_ladder
from ..sos import SemialgebraicSet
from ..utils import get_logger
from .advection import AdvectionOptions, run_bounded_advection
from .attractive import AttractiveInvariant
from .escape import EscapeCertificateSynthesizer, EscapeOptions, escape_region_from_advection
from .inclusion import check_sublevel_inclusion
from .levelset import LevelSetMaximizer, LevelSetOptions
from .lyapunov import LyapunovResult, LyapunovSynthesisOptions, MultipleLyapunovSynthesizer
from .properties import (
    ModePropertyTwoResult,
    PropertyOneResult,
    PropertyTwoResult,
    VerificationStatus,
)
from .report import (
    STEP_ADVECTION,
    STEP_ATTRACTIVE_INVARIANT,
    STEP_ESCAPE,
    STEP_MAX_LEVEL_CURVES,
    STEP_SET_INCLUSION,
    VerificationReport,
    join_relaxations,
)

LOGGER = get_logger("core.inevitability")


def advection_mode_names(options: "InevitabilityOptions", system) -> Tuple[str, ...]:
    """Modes whose outer-set advection is required by Property 2.

    Shared by :class:`InevitabilityVerifier` and the job engine so both
    always select the same modes: an explicit ``advection_modes`` override,
    else every mode except the idle mode.
    """
    if options.advection_modes is not None:
        return tuple(options.advection_modes)
    return tuple(name for name in system.mode_names if name != MODE_IDLE)


def run_mode_property_two(model, options: "InevitabilityOptions",
                          mode_name: str, invariant: AttractiveInvariant,
                          context: Optional[SolveContext] = None,
                          ) -> Tuple[ModePropertyTwoResult, Dict[str, float]]:
    """Property-2 evidence for one mode: advection, inclusion re-check, escape.

    The single source of the per-mode Property-2 pipeline, shared by
    :class:`InevitabilityVerifier` (which runs it for every pumping mode) and
    the job engine (which runs it as one job per mode).  ``model`` is anything
    with the verification-model interface; ``context`` the solve context all
    conic work of the mode runs under.  Returns the mode result plus the
    wall-clock of each stage (keys ``"advection"``, ``"inclusion"`` and —
    only when an escape search ran — ``"escape"``).
    """
    outer = model.outer_set_polynomial(margin=options.outer_set_margin)
    field_polys = model.nominal_fields()[mode_name]
    domain = model.mode_domain(mode_name)
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    advection = run_bounded_advection(
        mode_name, outer, field_polys, invariant, domain=domain,
        options=options.advection, context=context)
    timings["advection"] = time.perf_counter() - start

    # Dedicated inclusion re-check of the final advected set (Table 2 row),
    # needed only when advection did not already certify absorption.  The
    # relaxation ladder tries the cheap Gram cones first; a negative answer
    # from a cheap cone is inconclusive, so the next rung retries with a
    # more expressive cone.
    start = time.perf_counter()
    final_abs: Optional[str] = None
    inclusion_relaxation: Optional[str] = None
    if not advection.converged:
        for relaxation in relaxation_ladder(options.relaxation):
            cone = cone_for_relaxation(relaxation)
            for target_name, sublevel in invariant.sublevel_polynomials().items():
                inclusion = check_sublevel_inclusion(
                    advection.final_polynomial, sublevel,
                    multiplier_degree=options.advection.inclusion_multiplier_degree,
                    domain=domain,
                    solver_backend=options.advection.solver_backend,
                    cone=cone,
                    context=context,
                    **options.advection.solver_settings,
                )
                if inclusion.holds:
                    final_abs = target_name
                    inclusion_relaxation = relaxation
                    break
            if final_abs is not None:
                break
    timings["inclusion"] = time.perf_counter() - start

    if advection.converged or final_abs is not None:
        return ModePropertyTwoResult(
            mode_name=mode_name, advection=advection, escape=None,
            status=VerificationStatus.VERIFIED,
            message=f"advected set absorbed by level set of "
                    f"{advection.absorbing_mode or final_abs}",
            relaxation=inclusion_relaxation,
        ), timings

    # Advection inconclusive: Algorithm 1 lines 13-21 (escape certificate).
    if not options.attempt_escape_on_inconclusive:
        return ModePropertyTwoResult(
            mode_name=mode_name, advection=advection, escape=None,
            status=VerificationStatus.INCONCLUSIVE,
            message="advection did not immerse and escape search disabled",
        ), timings

    own_level = invariant.level_set(mode_name) if mode_name in invariant.level_sets \
        else next(iter(invariant.level_sets.values()))
    escape_region = escape_region_from_advection(
        advection.final_polynomial, own_level.sublevel_polynomial,
        region_box=model.region_box_set(),
    )
    synthesizer = EscapeCertificateSynthesizer(options.escape, context=context)
    start = time.perf_counter()
    try:
        escape = synthesizer.synthesize(
            mode_name, field_polys, escape_region,
            bounds=model.state_bounds(),
        )
        timings["escape"] = time.perf_counter() - start
        mode_status = VerificationStatus.VERIFIED if escape.validation_passed \
            else VerificationStatus.FAILED
        return ModePropertyTwoResult(
            mode_name=mode_name, advection=advection, escape=escape,
            status=mode_status,
            message="escape certificate covers the inconclusive sub-region",
        ), timings
    except CertificateError as exc:
        timings["escape"] = time.perf_counter() - start
        return ModePropertyTwoResult(
            mode_name=mode_name, advection=advection, escape=None,
            status=VerificationStatus.INCONCLUSIVE, message=str(exc),
        ), timings


def levelset_domain_for(model, options: "InevitabilityOptions",
                        mode_name: str) -> SemialgebraicSet:
    """Domain over which ``mode_name``'s level curve is maximised.

    ``model`` is anything with the verification-model interface
    (``system``, ``region_box_set``, ``state_bounds``).  Shared by
    :class:`InevitabilityVerifier` and the job engine — see
    :attr:`InevitabilityOptions.levelset_domain` for the semantics.
    """
    if options.levelset_domain == "box":
        return model.region_box_set(name="levelset_box")
    if options.levelset_domain != "mode":
        raise ValueError(
            f"unknown levelset_domain {options.levelset_domain!r}; "
            "expected 'mode' or 'box'")
    synthesizer = MultipleLyapunovSynthesizer(model.system,
                                              options=options.lyapunov)
    return synthesizer.mode_domain(mode_name)


@dataclass
class InevitabilityOptions:
    """Aggregated options for the four verification stages."""

    lyapunov: LyapunovSynthesisOptions = field(default_factory=LyapunovSynthesisOptions)
    levelset: LevelSetOptions = field(default_factory=LevelSetOptions)
    advection: AdvectionOptions = field(default_factory=AdvectionOptions)
    escape: EscapeOptions = field(default_factory=EscapeOptions)
    advection_modes: Optional[Sequence[str]] = None   # default: all pumping modes
    outer_set_margin: float = 1.0
    verify_property_two: bool = True
    attempt_escape_on_inconclusive: bool = True
    # Domain over which each mode's level curve is maximised: ``"mode"`` uses
    # the mode's flow set intersected with the region box (the historical
    # behaviour), ``"box"`` uses the region box alone.  ``"mode"`` is overly
    # strong for modes whose flow set touches the equilibrium (a sub-level
    # neighbourhood of the equilibrium can never sit inside a half-space
    # through it), so workloads with switching surfaces through the
    # equilibrium — the CP PLL pumping modes, sliding-mode converters —
    # should use ``"box"``.
    levelset_domain: str = "mode"
    # Gram-cone relaxation of the certificate pipeline: "dsos" | "sdsos" |
    # "sos" | "auto" (escalation ladder).  Setting it here (at construction
    # or via :meth:`apply_relaxation`) propagates to the Lyapunov and
    # level-set stage options and to the Property-2 inclusion re-check.
    relaxation: str = "sos"

    def __post_init__(self) -> None:
        if self.relaxation != "sos":
            self.apply_relaxation(self.relaxation)

    def stages(self) -> Tuple[LyapunovSynthesisOptions, LevelSetOptions,
                              AdvectionOptions, EscapeOptions]:
        """The four per-stage configs (all :class:`~repro.core.config.StageConfig`)."""
        return (self.lyapunov, self.levelset, self.advection, self.escape)

    def apply_relaxation(self, relaxation: str) -> None:
        """Set the Gram-cone relaxation of every pipeline stage."""
        relaxation = str(relaxation).lower()
        if relaxation not in RELAXATIONS:
            raise ValueError(
                f"unknown relaxation {relaxation!r}; expected one of {RELAXATIONS}")
        self.relaxation = relaxation
        for stage in self.stages():
            stage.relaxation = relaxation

    def apply_backend(self, backend: Optional[str],
                      settings: Optional[Dict[str, object]] = None) -> None:
        """Set the conic solver backend (and optional settings) of every stage.

        Stage-level backends override the solve context's default; use this
        when one pipeline must mix backends with a shared context (otherwise
        prefer setting the backend on the context/session itself).
        """
        for stage in self.stages():
            stage.solver_backend = backend
            if settings:
                stage.solver_settings = {**stage.solver_settings, **settings}


class InevitabilityVerifier:
    """Verify inevitability of phase-locking for a CP PLL verification model."""

    def __init__(self, model: PLLVerificationModel,
                 options: Optional[InevitabilityOptions] = None,
                 context: Optional[SolveContext] = None):
        self.model = model
        self.options = options or InevitabilityOptions()
        self.context = context
        # The S-procedure domains always include the region-of-interest box.
        if self.options.lyapunov.domain_boxes is None:
            self.options.lyapunov.domain_boxes = self.model.state_bounds()

    # ------------------------------------------------------------------
    # Stage 1 + 2: Property 1
    # ------------------------------------------------------------------
    def verify_property_one(self, report: VerificationReport) -> PropertyOneResult:
        synthesizer = MultipleLyapunovSynthesizer(
            self.model.system, options=self.options.lyapunov,
            context=self.context)
        start = time.perf_counter()
        lyapunov = synthesizer.synthesize()
        report.add_timing(
            STEP_ATTRACTIVE_INVARIANT, time.perf_counter() - start,
            detail=f"degree {self.options.lyapunov.certificate_degree}",
            relaxation=lyapunov.relaxation,
        )
        if not lyapunov.feasible:
            return PropertyOneResult(
                status=VerificationStatus.INCONCLUSIVE, lyapunov=lyapunov, invariant=None,
                message=lyapunov.message,
            )

        maximizer = LevelSetMaximizer(self.options.levelset,
                                      context=self.context)
        certificates = {name: cert.certificate
                        for name, cert in lyapunov.certificates.items()}
        domains = self.levelset_domains(lyapunov)
        start = time.perf_counter()
        try:
            invariant = AttractiveInvariant.from_maximization(
                maximizer, certificates, domains,
                variables=self.model.state_variables,
                bounds=self.model.state_bounds())
        except CertificateError as exc:
            report.add_timing(STEP_MAX_LEVEL_CURVES, time.perf_counter() - start,
                              detail=f"strategy={self.options.levelset.strategy}")
            return PropertyOneResult(
                status=VerificationStatus.INCONCLUSIVE, lyapunov=lyapunov, invariant=None,
                message=f"level-curve maximisation failed: {exc}",
            )
        report.add_timing(STEP_MAX_LEVEL_CURVES, time.perf_counter() - start,
                          detail=f"strategy={self.options.levelset.strategy}",
                          relaxation=join_relaxations(
                              level_set.relaxation
                              for level_set in invariant.level_sets.values()))
        status = VerificationStatus.VERIFIED if lyapunov.all_validations_passed \
            else VerificationStatus.FAILED
        return PropertyOneResult(
            status=status, lyapunov=lyapunov, invariant=invariant,
            message="attractive invariant constructed",
        )

    def levelset_domains(self, lyapunov: LyapunovResult) -> Dict[str, SemialgebraicSet]:
        """Per-mode domains for level-curve maximisation (see ``levelset_domain``)."""
        if self.options.levelset_domain == "mode":
            # The certificates already carry their synthesis-time mode domains.
            return {name: cert.domain
                    for name, cert in lyapunov.certificates.items()}
        return {name: levelset_domain_for(self.model, self.options, name)
                for name in lyapunov.certificates}

    # ------------------------------------------------------------------
    # Stage 3 + 4: Property 2
    # ------------------------------------------------------------------
    def _advection_mode_names(self) -> Tuple[str, ...]:
        return advection_mode_names(self.options, self.model.system)

    def verify_property_two(self, invariant: AttractiveInvariant,
                            report: VerificationReport) -> PropertyTwoResult:
        per_mode: Dict[str, ModePropertyTwoResult] = {}
        status = VerificationStatus.VERIFIED

        for mode_name in self._advection_mode_names():
            result, timings = run_mode_property_two(
                self.model, self.options, mode_name, invariant,
                context=self.context)
            iterations = result.advection.iterations_used \
                if result.advection is not None else 0
            report.add_timing(STEP_ADVECTION, timings["advection"],
                              detail=f"{mode_name}: {iterations} iterations")
            report.add_timing(STEP_SET_INCLUSION, timings["inclusion"],
                              detail=mode_name, relaxation=result.relaxation)
            if "escape" in timings:
                report.add_timing(STEP_ESCAPE, timings["escape"],
                                  detail=mode_name)
            per_mode[mode_name] = result
            status = status.combine(result.status)

        message = "bounded reachability of X1 established" \
            if status is VerificationStatus.VERIFIED else \
            "property 2 could not be fully established"
        return PropertyTwoResult(status=status, per_mode=per_mode, message=message)

    # ------------------------------------------------------------------
    def verify(self) -> VerificationReport:
        """Run the full methodology and return the report."""
        report = VerificationReport(
            system_name=self.model.system.name,
            property_one=PropertyOneResult(
                status=VerificationStatus.INCONCLUSIVE, lyapunov=None, invariant=None),
            property_two=PropertyTwoResult(status=VerificationStatus.INCONCLUSIVE),
            options_summary={
                "lyapunov_degree": self.options.lyapunov.certificate_degree,
                "multiplier_degree": self.options.lyapunov.multiplier_degree,
                "advection_step": self.options.advection.time_step,
                "advection_operator": self.options.advection.operator,
                "uncertainty": self.model.uncertainty,
                "relaxation": self.options.relaxation,
            },
        )

        property_one = self.verify_property_one(report)
        report.property_one = property_one
        if not property_one.verified or property_one.invariant is None:
            LOGGER.warning("property 1 not established: %s", property_one.message)
            return report

        if self.options.verify_property_two:
            property_two = self.verify_property_two(property_one.invariant, report)
            report.property_two = property_two
        return report
