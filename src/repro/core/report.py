"""Verification reports: the per-step timing table (Table 2) and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .properties import PropertyOneResult, PropertyTwoResult, VerificationStatus


def join_relaxations(relaxations: Iterable[Optional[str]]) -> Optional[str]:
    """Canonical relaxation column value: dedupe preserving first-seen order,
    join with commas, ``None`` when nothing was recorded."""
    seen: List[str] = []
    for relaxation in relaxations:
        if relaxation and relaxation not in seen:
            seen.append(relaxation)
    return ",".join(seen) if seen else None

#: Canonical step names, matching the rows of Table 2 of the paper.
STEP_ATTRACTIVE_INVARIANT = "Attractive Invariant"
STEP_MAX_LEVEL_CURVES = "Max. Level Curves"
STEP_ADVECTION = "Advection"
STEP_SET_INCLUSION = "Checking Set Inclusion"
STEP_ESCAPE = "Escape Certificate"
#: Simulation-based cross-check added by the verification engine (not a
#: Table 2 row of the paper; rendered after the canonical steps).
STEP_FALSIFICATION_CHECK = "Falsification Check"

TABLE2_STEP_ORDER = (
    STEP_ATTRACTIVE_INVARIANT,
    STEP_MAX_LEVEL_CURVES,
    STEP_ADVECTION,
    STEP_SET_INCLUSION,
    STEP_ESCAPE,
)


@dataclass
class StepTiming:
    """Wall-clock timing, detail string and relaxation of one verification step."""

    step: str
    seconds: float
    detail: str = ""
    #: Gram-cone relaxation that certified this step ("dsos"/"sdsos"/"sos"),
    #: or ``None`` for steps without conic certificates (e.g. falsification).
    relaxation: Optional[str] = None


@dataclass
class VerificationReport:
    """Full record of one inevitability verification run."""

    system_name: str
    property_one: PropertyOneResult
    property_two: PropertyTwoResult
    timings: List[StepTiming] = field(default_factory=list)
    options_summary: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def inevitability_status(self) -> VerificationStatus:
        return self.property_one.status.combine(self.property_two.status)

    @property
    def inevitability_verified(self) -> bool:
        return self.inevitability_status.is_verified

    @property
    def total_time(self) -> float:
        return sum(t.seconds for t in self.timings)

    # ------------------------------------------------------------------
    def add_timing(self, step: str, seconds: float, detail: str = "",
                   relaxation: Optional[str] = None) -> None:
        self.timings.append(StepTiming(step=step, seconds=seconds,
                                       detail=detail, relaxation=relaxation))

    def timing_for(self, step: str) -> float:
        return sum(t.seconds for t in self.timings if t.step == step)

    def table2_rows(self) -> List[Tuple[str, float, str, Optional[str]]]:
        """Rows of the paper's Table 2: (step, seconds, detail, relaxation).

        Canonical steps come first in the paper's order; any other recorded
        step (e.g. the engine's falsification cross-check) follows in
        alphabetical order, so the row ordering is fully deterministic and no
        timing is silently dropped.  Skipped steps (no timing entries)
        produce no row.  The relaxation column joins the distinct
        relaxations recorded for the step's entries (``None`` when none was
        recorded).
        """
        rows: List[Tuple[str, float, str, Optional[str]]] = []
        extra_steps = sorted({t.step for t in self.timings
                              if t.step not in TABLE2_STEP_ORDER})
        for step in tuple(TABLE2_STEP_ORDER) + tuple(extra_steps):
            entries = [t for t in self.timings if t.step == step]
            if not entries:
                continue
            seconds = sum(t.seconds for t in entries)
            detail = "; ".join(t.detail for t in entries if t.detail)
            rows.append((step, seconds, detail,
                         join_relaxations(t.relaxation for t in entries)))
        return rows

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        lines = [f"Inevitability verification report for {self.system_name}",
                 "=" * 60]
        lines.append(f"Property 1 (attractivity in X1):      {self.property_one.status.value}")
        if self.property_one.invariant is not None:
            for mode_name, level, degree in self.property_one.invariant.summary_rows():
                lines.append(f"    {mode_name}: V degree {degree}, maximised level c = {level:.4g}")
        lines.append(f"Property 2 (bounded reachability):    {self.property_two.status.value}")
        for mode_name, result in sorted(self.property_two.per_mode.items()):
            parts = [f"    {mode_name}: {result.status.value}"]
            if result.advection is not None:
                parts.append(f"advection {result.advection.iterations_used} iterations"
                             f"{' (absorbed)' if result.advection.converged else ''}")
            if result.escape is not None:
                parts.append("escape certificate found")
            lines.append(", ".join(parts))
        lines.append(f"Inevitability (P = P1 and P2):        {self.inevitability_status.value}")
        lines.append("")
        rows = self.table2_rows()
        if rows:
            lines.append("Timing breakdown (Table 2 analogue):")
            for step, seconds, detail, relaxation in rows:
                suffix = f"  [{detail}]" if detail else ""
                if relaxation:
                    suffix = f"{suffix}  <{relaxation}>"
                lines.append(f"    {step:24s} {seconds:10.3f} s{suffix}")
            lines.append(f"    {'Total':24s} {self.total_time:10.3f} s")
        else:
            lines.append("Timing breakdown (Table 2 analogue): no steps executed")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Plain-data form of the report (CLI ``--json`` / engine artifacts)."""
        per_mode = {}
        for mode_name, result in sorted(self.property_two.per_mode.items()):
            entry: Dict[str, object] = {"status": result.status.value,
                                        "message": result.message}
            if result.advection is not None:
                entry["advection_iterations"] = result.advection.iterations_used
                entry["advection_converged"] = result.advection.converged
            if result.escape is not None:
                entry["escape"] = True
            per_mode[mode_name] = entry
        invariant_rows = []
        if self.property_one.invariant is not None:
            invariant_rows = [
                {"mode": mode_name, "level": level, "degree": degree}
                for mode_name, level, degree
                in self.property_one.invariant.summary_rows()
            ]
        return {
            "system": self.system_name,
            "property_one": {
                "status": self.property_one.status.value,
                "message": self.property_one.message,
                "invariant": invariant_rows,
            },
            "property_two": {
                "status": self.property_two.status.value,
                "message": self.property_two.message,
                "per_mode": per_mode,
            },
            "inevitability": self.inevitability_status.value,
            "timings": [
                {"step": step, "seconds": seconds, "detail": detail,
                 "relaxation": relaxation}
                for step, seconds, detail, relaxation in self.table2_rows()
            ],
            "total_seconds": self.total_time,
            "options": dict(self.options_summary),
        }

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render_text()
