"""Bounded advection of polynomial level sets (§2.5, SOS program (6), Algorithm 1).

The advection operator propagates a sub-level set ``S = {a <= 0}`` forward by
a small time step ``h`` under a polynomial vector field ``f``.  With the
first-order Taylor approximation of the backward flow,
``Phi_{-h}(y) ≈ y - h f(y)``, the advected set is (to first order)

    S_h = { y : a(y - h f(y)) <= 0 }.

Two operators are provided:

* ``"composition"`` — use the composed polynomial ``a(y - h f(y))`` directly.
  For affine vector fields (the CP PLL modes) this does not raise the degree,
  so it is exact with respect to the Taylor map and needs no SOS solve.
* ``"sos_projection"`` — search a fixed-degree polynomial ``b`` whose
  sub-level set sandwiches the composed set within a margin ``epsilon``
  (the shape of the paper's SOS program (6)); all unknowns enter linearly so
  a single SOS solve per step suffices.

Algorithm 1 of the paper is implemented by :func:`run_bounded_advection`:
advect the initial outer set repeatedly and stop as soon as the advected set
is certified (Lemma 1) to be inside the attractive invariant ``X1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


from ..exceptions import CertificateError
from ..polynomial import Polynomial, VariableVector
from ..sdp import SolveContext, cone_for_relaxation, relaxation_ladder
from ..sos import SemialgebraicSet, SOSProgram
from ..utils import get_logger
from .attractive import AttractiveInvariant
from .config import StageConfig
from .inclusion import check_sublevel_inclusion

LOGGER = get_logger("core.advection")


@dataclass
class AdvectionOptions(StageConfig):
    """Options of the bounded-advection stage.

    Inherits the shared stage knobs (``multiplier_degree``,
    ``solver_backend``, ``solver_settings``, ``relaxation``) from
    :class:`~repro.core.config.StageConfig`.  The relaxation governs the
    per-iteration absorption checks (Lemma-1 feasibility certificates); a
    negative answer from a cheap cone is inconclusive, so ``"auto"`` retries
    each check up the ladder.  The ``sos_projection`` operator's fitting
    program deliberately stays on the exact PSD cone: its coverage
    constraint shapes the next advected set, and a cheaper cone there
    would make individual steps infeasible rather than merely conservative.
    """

    time_step: float = 0.05
    max_iterations: int = 40
    operator: str = "composition"          # "composition" | "sos_projection"
    projection_degree: Optional[int] = None  # degree of the projected polynomial
    inclusion_multiplier_degree: int = 2
    inclusion_check_every: int = 1
    epsilon_weight: float = 1.0


@dataclass
class AdvectionStep:
    """One advection iteration."""

    iteration: int
    polynomial: Polynomial
    included_in: Optional[str]      # mode name of the absorbing level set, if any
    epsilon: float = 0.0


@dataclass
class AdvectionResult:
    """Outcome of Algorithm 1 for one mode."""

    mode_name: str
    initial_polynomial: Polynomial
    steps: List[AdvectionStep]
    converged: bool
    absorbing_mode: Optional[str]
    iterations_used: int
    total_time: float

    @property
    def final_polynomial(self) -> Polynomial:
        return self.steps[-1].polynomial if self.steps else self.initial_polynomial

    def polynomial_history(self) -> List[Polynomial]:
        return [self.initial_polynomial] + [s.polynomial for s in self.steps]


class LevelSetAdvector:
    """Single-step advection of a polynomial sub-level set."""

    def __init__(self, options: Optional[AdvectionOptions] = None,
                 context: Optional[SolveContext] = None):
        self.options = options or AdvectionOptions()
        self.context = context

    # ------------------------------------------------------------------
    def taylor_backward_map(self, variables: VariableVector,
                            vector_field: Sequence[Polynomial],
                            time_step: Optional[float] = None) -> List[Polynomial]:
        """The first-order Taylor backward-flow map ``y -> y - h f(y)``."""
        h = self.options.time_step if time_step is None else float(time_step)
        mapping = []
        for i, variable in enumerate(variables):
            xi = Polynomial.from_variable(variable, variables)
            mapping.append(xi - vector_field[i].with_variables(variables) * h)
        return mapping

    def advect_composition(self, level_poly: Polynomial,
                           vector_field: Sequence[Polynomial],
                           time_step: Optional[float] = None) -> Polynomial:
        """Exact composition with the Taylor backward map."""
        variables = level_poly.variables
        mapping = self.taylor_backward_map(variables, vector_field, time_step)
        return level_poly.compose(mapping).truncate(1e-14)

    def advect_sos_projection(self, level_poly: Polynomial,
                              vector_field: Sequence[Polynomial],
                              domain: Optional[SemialgebraicSet] = None,
                              time_step: Optional[float] = None,
                              ) -> Tuple[Polynomial, float]:
        """Fixed-degree projection of the advected set (paper's SOS program (6)).

        Finds ``b`` of the requested degree and the smallest ``epsilon`` with

        * ``comp(y) <= 0  =>  b(y) <= 0``      (advected set covered), and
        * ``b(y) <= comp(y) + epsilon`` on the domain (tightness),

        where ``comp(y) = a(y - h f(y))``.
        """
        options = self.options
        comp = self.advect_composition(level_poly, vector_field, time_step)
        variables = comp.variables
        degree = options.projection_degree or level_poly.degree
        if degree % 2 == 1:
            degree += 1

        program = SOSProgram(name="advection_projection", context=self.context)
        b = program.new_polynomial_variable(variables, degree, name="b_next")
        epsilon = program.new_variable(name="epsilon")
        program.add_scalar_constraint(epsilon, sense=">=")

        # Coverage: comp <= 0  =>  b <= 0  (Lemma 1 with SOS multiplier).
        lam = program.new_sos_polynomial(variables, options.multiplier_degree, name="lam_cov")
        program.add_sos_constraint(lam * comp - b, name="coverage")

        # Tightness: comp - epsilon <= b <= comp + epsilon on the domain.
        from ..polynomial import ParametricPolynomial

        comp_param = ParametricPolynomial.from_polynomial(comp)
        upper = comp_param + epsilon - b
        lower = b - comp_param + epsilon
        if domain is not None:
            for k, g in enumerate(domain.inequalities):
                sig_u = program.new_sos_polynomial(variables, options.multiplier_degree,
                                                   name=f"sig_u{k}")
                sig_l = program.new_sos_polynomial(variables, options.multiplier_degree,
                                                   name=f"sig_l{k}")
                upper = upper - sig_u * g.with_variables(variables)
                lower = lower - sig_l * g.with_variables(variables)
        program.add_sos_constraint(upper, name="tight_upper")
        program.add_sos_constraint(lower, name="tight_lower")
        program.minimize(epsilon * options.epsilon_weight)

        solution = program.solve(backend=options.solver_backend, **options.solver_settings)
        if not solution.is_success:
            raise CertificateError(
                f"SOS-projected advection step failed: {solution.status.value}"
            )
        return solution.polynomial(b).truncate(1e-12), float(solution.value(epsilon))

    def advect(self, level_poly: Polynomial, vector_field: Sequence[Polynomial],
               domain: Optional[SemialgebraicSet] = None,
               time_step: Optional[float] = None) -> Tuple[Polynomial, float]:
        """Dispatch on the configured operator; returns ``(polynomial, epsilon)``."""
        if self.options.operator == "composition":
            return self.advect_composition(level_poly, vector_field, time_step), 0.0
        if self.options.operator == "sos_projection":
            return self.advect_sos_projection(level_poly, vector_field, domain, time_step)
        raise CertificateError(f"unknown advection operator {self.options.operator!r}")


def _check_absorbed(polynomial: Polynomial, invariant: AttractiveInvariant,
                    domain: Optional[SemialgebraicSet],
                    options: AdvectionOptions,
                    context: Optional[SolveContext] = None) -> Optional[str]:
    """Return the name of a level set of ``X1`` certified to contain the set.

    Walks the relaxation ladder cheapest-first: an inclusion certified by a
    cheap cone is a valid SOS certificate, while a cheap-cone rejection is
    inconclusive and retried one rung up.
    """
    for relaxation in relaxation_ladder(options.relaxation):
        cone = cone_for_relaxation(relaxation)
        for mode_name, sublevel in invariant.sublevel_polynomials().items():
            inclusion = check_sublevel_inclusion(
                polynomial, sublevel,
                multiplier_degree=options.inclusion_multiplier_degree,
                domain=domain,
                solver_backend=options.solver_backend,
                cone=cone,
                context=context,
                **options.solver_settings,
            )
            if inclusion.holds:
                return mode_name
    return None


def run_bounded_advection(
    mode_name: str,
    initial_polynomial: Polynomial,
    vector_field: Sequence[Polynomial],
    invariant: AttractiveInvariant,
    domain: Optional[SemialgebraicSet] = None,
    options: Optional[AdvectionOptions] = None,
    context: Optional[SolveContext] = None,
) -> AdvectionResult:
    """Algorithm 1 (lines 1-12): advect until absorbed in ``X1`` or out of budget."""
    options = options or AdvectionOptions()
    advector = LevelSetAdvector(options, context=context)
    start = time.perf_counter()

    steps: List[AdvectionStep] = []
    current = initial_polynomial
    converged = False
    absorbing: Optional[str] = None

    # The initial set may already be inside the invariant.
    absorbing = _check_absorbed(current, invariant, domain, options, context)
    if absorbing is not None:
        return AdvectionResult(
            mode_name=mode_name, initial_polynomial=initial_polynomial, steps=[],
            converged=True, absorbing_mode=absorbing, iterations_used=0,
            total_time=time.perf_counter() - start,
        )

    for iteration in range(1, options.max_iterations + 1):
        current, epsilon = advector.advect(current, vector_field, domain)
        included_in = None
        if iteration % max(options.inclusion_check_every, 1) == 0 \
                or iteration == options.max_iterations:
            included_in = _check_absorbed(current, invariant, domain, options,
                                          context)
        steps.append(AdvectionStep(iteration=iteration, polynomial=current,
                                   included_in=included_in, epsilon=epsilon))
        if included_in is not None:
            converged = True
            absorbing = included_in
            break

    return AdvectionResult(
        mode_name=mode_name,
        initial_polynomial=initial_polynomial,
        steps=steps,
        converged=converged,
        absorbing_mode=absorbing,
        iterations_used=len(steps),
        total_time=time.perf_counter() - start,
    )
