"""Shared configuration base of the verification pipeline stages.

Every SOS pipeline stage — Lyapunov synthesis, level-curve maximisation,
bounded advection, escape-certificate search — historically carried its own
near-duplicate copy of the same four knobs (S-procedure multiplier degree,
solver backend, solver settings, Gram-cone relaxation).  :class:`StageConfig`
is the single definition; the per-stage Options dataclasses inherit from it
and add only their stage-specific fields.

These are *data* objects: the live solver state (cache, counters, backend
instances) lives on a :class:`~repro.sdp.context.SolveContext`, which is
threaded through the stage classes separately.  A stage-level
``solver_backend`` overrides the context's default backend for that stage's
solves; per-call arguments override both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class StageConfig:
    """Knobs shared by every SOS pipeline stage.

    Attributes
    ----------
    multiplier_degree:
        Degree of the S-procedure / Lemma-1 multiplier polynomials.
    solver_backend:
        Conic solver backend for this stage's solves (``None`` defers to the
        governing :class:`~repro.sdp.context.SolveContext`, which itself
        falls back to the registry default, ``"admm"``).
    solver_settings:
        Keyword settings forwarded to the backend's settings dataclass.
    relaxation:
        Gram-cone relaxation of the stage's SOS certificates: ``"dsos"``
        (diagonally-dominant Gram matrices → pure LP cones), ``"sdsos"``
        (scaled diagonal dominance → sums of 2×2 PSD blocks), ``"chordal"``
        (clique-sized PSD blocks from a chordal extension of the Gram
        sparsity pattern — exact when the pattern is genuinely sparse),
        ``"sos"`` (full PSD Gram, the default) or ``"auto"`` — try the
        cheapest relaxation first and escalate on failure.  Certificates
        found in a cheaper cone are valid SOS certificates
        (DSOS ⊂ SDSOS ⊂ chordal ⊆ SOS).
    """

    multiplier_degree: int = 2
    solver_backend: Optional[str] = None
    solver_settings: Dict[str, object] = field(default_factory=dict)
    relaxation: str = "sos"
