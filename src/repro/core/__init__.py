"""The paper's contribution: SOS-based inevitability verification for CP PLLs."""

from .config import StageConfig
from .lyapunov import (
    LyapunovResult,
    LyapunovSynthesisOptions,
    ModeCertificate,
    MultipleLyapunovSynthesizer,
)
from .levelset import LevelSetMaximizer, LevelSetOptions, MaximizedLevelSet
from .attractive import AttractiveInvariant
from .inclusion import (
    InclusionCertificate,
    ParametricInclusionFamily,
    build_inclusion_program,
    check_sublevel_inclusion,
    sample_inclusion_counterexample,
    sublevel_set_is_empty,
)
from .advection import (
    AdvectionOptions,
    AdvectionResult,
    AdvectionStep,
    LevelSetAdvector,
    run_bounded_advection,
)
from .escape import (
    EscapeCertificate,
    EscapeCertificateSynthesizer,
    EscapeOptions,
    escape_region_from_advection,
)
from .properties import (
    ModePropertyTwoResult,
    PropertyOneResult,
    PropertyTwoResult,
    VerificationStatus,
)
from .report import (
    STEP_ADVECTION,
    STEP_ATTRACTIVE_INVARIANT,
    STEP_ESCAPE,
    STEP_FALSIFICATION_CHECK,
    STEP_MAX_LEVEL_CURVES,
    STEP_SET_INCLUSION,
    TABLE2_STEP_ORDER,
    StepTiming,
    VerificationReport,
)
from .inevitability import InevitabilityOptions, InevitabilityVerifier

__all__ = [
    "StageConfig",
    "LyapunovSynthesisOptions",
    "LyapunovResult",
    "ModeCertificate",
    "MultipleLyapunovSynthesizer",
    "LevelSetOptions",
    "LevelSetMaximizer",
    "MaximizedLevelSet",
    "AttractiveInvariant",
    "InclusionCertificate",
    "ParametricInclusionFamily",
    "build_inclusion_program",
    "check_sublevel_inclusion",
    "sample_inclusion_counterexample",
    "sublevel_set_is_empty",
    "AdvectionOptions",
    "AdvectionStep",
    "AdvectionResult",
    "LevelSetAdvector",
    "run_bounded_advection",
    "EscapeOptions",
    "EscapeCertificate",
    "EscapeCertificateSynthesizer",
    "escape_region_from_advection",
    "VerificationStatus",
    "PropertyOneResult",
    "PropertyTwoResult",
    "ModePropertyTwoResult",
    "StepTiming",
    "VerificationReport",
    "TABLE2_STEP_ORDER",
    "STEP_ATTRACTIVE_INVARIANT",
    "STEP_MAX_LEVEL_CURVES",
    "STEP_ADVECTION",
    "STEP_SET_INCLUSION",
    "STEP_ESCAPE",
    "STEP_FALSIFICATION_CHECK",
    "InevitabilityOptions",
    "InevitabilityVerifier",
]
