"""Multiple Lyapunov certificate synthesis (SOS program 1 of the paper, §3).

For every mode ``q`` of the hybrid system a polynomial certificate ``V_q`` is
sought such that (Theorem 1):

(a) ``V_q(x) > 0`` on the mode's domain away from the equilibrium,
(b) the Lie derivative of ``V_q`` along the mode's flow map is non-positive on
    the mode's domain, for every admissible parameter value, and
(c) ``V_{q'}(G(x)) <= V_q(x)`` across every jump from ``q`` to ``q'``.

Every constraint is relaxed to an SOS membership through the S-procedure.
Condition (b) is quantified over the uncertain-parameter box either by vertex
enumeration (exact for dynamics affine in the parameters — the CP PLL case)
or by treating parameters as extra indeterminates with interval constraints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


from ..exceptions import CertificateError
from ..hybrid import HybridSystem, Mode
from ..polynomial import ParametricPolynomial, Polynomial, VariableVector
from ..sdp import SolveContext, cone_for_relaxation, relaxation_ladder
from ..sos import (
    SemialgebraicSet,
    SOSProgram,
    SOSSolution,
    add_positivity_on_set,
    validate_decrease_along_field,
    validate_nonnegativity,
)
from ..utils import get_logger
from .config import StageConfig

LOGGER = get_logger("core.lyapunov")


@dataclass
class LyapunovSynthesisOptions(StageConfig):
    """Knobs of the multiple-Lyapunov SOS program.

    Inherits the shared stage knobs (``multiplier_degree``,
    ``solver_backend``, ``solver_settings``, ``relaxation``) from
    :class:`~repro.core.config.StageConfig`.
    """

    certificate_degree: int = 2
    positivity_margin: float = 1e-3      # epsilon * ||x||^2 lower bound on V_q
    decrease_margin: float = 0.0         # 0 = negative *semi*-definite Lie derivative
    jump_margin: float = 0.0             # slack required across jumps
    common_certificate: bool = False     # force V_1 = ... = V_m (ablation)
    parameter_handling: str = "vertex"   # "vertex" | "interval"
    domain_boxes: Optional[Sequence[Tuple[float, float]]] = None  # state box for S-procedure
    positivity_global: bool = True       # require V - eps||x||^2 SOS globally (stronger, smaller SDP)
    box_in_decrease: bool = False        # intersect decrease domains with the state box
    box_in_jumps: bool = False           # intersect jump domains with the state box
    # Practical-stability relaxation: require the Lie-derivative decrease only where
    # the voltage deviation exceeds this radius (a tube around the lock manifold).
    # 0.0 reproduces the paper's condition verbatim; see DESIGN.md ("formulation note")
    # for why the verbatim condition is degenerate for constant-current pumping.
    lock_tube_radius: float = 0.5
    voltage_indices: Optional[Sequence[int]] = None  # defaults to all states except the last (phase)
    # How the decrease/jump domains are made compact for the S-procedure (Putinar-style
    # certificates generally need a compactness constraint): "ball" adds a single
    # ``R^2 - ||x||^2 >= 0`` constraint covering the state box, "box" adds one interval
    # constraint per state, "none" leaves the domain as is.
    compactness: str = "ball"
    validate_samples: int = 1500
    validation_tolerance: float = 1e-4
    # Extra equality constraints intersected into a mode's domains, keyed by
    # mode name.  The canonical use is pinning a sliding-mode/idle mode to its
    # switching surface (e.g. the CP PLL's mode1 flows only on ``e = 0`` in
    # the relay abstraction): without it the decrease condition is quantified
    # over the full over-approximated flow strip, which is infeasible for
    # dynamics that do not control the switching coordinate.
    mode_equalities: Optional[Mapping[str, Sequence[Polynomial]]] = None
    # Tolerances of the Gram-certificate soundness gate used by the "auto"
    # ladder before accepting a cheap-cone solution (reuses
    # SOSCertificate.is_numerically_sos on the reconstructed Gram matrices).
    # The residual tolerance is calibrated against the first-order ADMM
    # backend: converged moderate-accuracy solves reconstruct to ~1e-3..1e-2
    # while infeasible cheap-cone attempts leave residuals of order 1e-1.
    relaxation_eig_tol: float = -1e-6
    relaxation_res_tol: float = 2e-2


@dataclass
class ModeCertificate:
    """A synthesised Lyapunov certificate for one mode."""

    mode_name: str
    certificate: Polynomial
    domain: SemialgebraicSet

    def value(self, state: Sequence[float]) -> float:
        return self.certificate.evaluate(state)


@dataclass
class LyapunovResult:
    """Outcome of the multiple-Lyapunov synthesis."""

    feasible: bool
    certificates: Dict[str, ModeCertificate]
    solution: Optional[SOSSolution]
    options: LyapunovSynthesisOptions
    synthesis_time: float
    validation_reports: List[object] = field(default_factory=list)
    message: str = ""
    #: Relaxation that produced the returned certificates ("dsos", "sdsos"
    #: or "sos"; under "auto" the rung that was accepted).
    relaxation: str = "sos"

    def certificate_for(self, mode_name: str) -> Polynomial:
        if mode_name not in self.certificates:
            raise KeyError(f"no certificate for mode {mode_name!r}")
        return self.certificates[mode_name].certificate

    @property
    def all_validations_passed(self) -> bool:
        return all(report.passed for report in self.validation_reports)


class MultipleLyapunovSynthesizer:
    """Builds and solves SOS program 1 of the paper for a hybrid system."""

    def __init__(self, system: HybridSystem,
                 options: Optional[LyapunovSynthesisOptions] = None,
                 region_box: Optional[Sequence[Tuple[float, float]]] = None,
                 context: Optional[SolveContext] = None):
        self.system = system
        self.options = options or LyapunovSynthesisOptions()
        self.context = context
        if region_box is not None:
            self.options.domain_boxes = list(region_box)

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------
    def _extra_equalities(self, mode_name: str) -> Tuple[Polynomial, ...]:
        if not self.options.mode_equalities:
            return ()
        return tuple(self.options.mode_equalities.get(mode_name, ()))

    def _with_mode_equalities(self, mode_name: str,
                              domain: SemialgebraicSet) -> SemialgebraicSet:
        extra = self._extra_equalities(mode_name)
        if not extra:
            return domain
        return SemialgebraicSet(
            domain.variables,
            inequalities=domain.inequalities,
            equalities=domain.equalities + extra,
            name=f"{domain.name}_pinned",
        )

    def _mode_domain(self, mode: Mode) -> SemialgebraicSet:
        """Full mode domain (flow set intersected with the state box) — used for
        level-set maximisation and sampling validation."""
        domain = mode.flow_set
        if self.options.domain_boxes is not None:
            domain = domain.with_box(self.options.domain_boxes)
        return self._with_mode_equalities(mode.name, domain)

    def mode_domain(self, mode_name: str) -> SemialgebraicSet:
        """Public access to a mode's full domain (used by the job engine)."""
        return self._mode_domain(self.system.mode(mode_name))

    def _positivity_domain(self, mode: Mode) -> Optional[SemialgebraicSet]:
        """Domain for condition (a); ``None`` means global positivity."""
        if self.options.positivity_global:
            return None
        return self._mode_domain(mode)

    def _lock_tube_constraint(self) -> Optional[Polynomial]:
        """``sum_i v_i^2 - r^2 >= 0`` over the voltage states (None when disabled)."""
        radius = self.options.lock_tube_radius
        if radius <= 0.0:
            return None
        state_vars = self.system.state_variables
        indices = self.options.voltage_indices
        if indices is None:
            indices = range(len(state_vars) - 1)
        poly = Polynomial.constant(state_vars, -float(radius) ** 2)
        for i in indices:
            xi = Polynomial.from_variable(state_vars[i], state_vars)
            poly = poly + xi * xi
        return poly

    def _compactness_constraints(self) -> Tuple[Polynomial, ...]:
        """Constraints making the S-procedure domains compact (see options)."""
        boxes = self.options.domain_boxes
        if boxes is None or self.options.compactness == "none":
            return ()
        state_vars = self.system.state_variables
        if self.options.compactness == "box":
            constraints = []
            for i, (lo, hi) in enumerate(boxes):
                xi = Polynomial.from_variable(state_vars[i], state_vars)
                constraints.append((xi - lo) * (hi - xi))
            return tuple(constraints)
        if self.options.compactness == "ball":
            radius_sq = sum(max(lo * lo, hi * hi) for lo, hi in boxes)
            poly = Polynomial.constant(state_vars, float(radius_sq))
            for v in state_vars:
                xi = Polynomial.from_variable(v, state_vars)
                poly = poly - xi * xi
            return (poly,)
        raise CertificateError(f"unknown compactness mode {self.options.compactness!r}")

    def _decrease_domain(self, mode: Mode) -> SemialgebraicSet:
        """Domain for condition (b)."""
        domain = mode.flow_set
        extra: List[Polynomial] = list(self._compactness_constraints())
        if self.options.box_in_decrease and self.options.domain_boxes is not None \
                and self.options.compactness != "box":
            domain = domain.with_box(self.options.domain_boxes)
        tube = self._lock_tube_constraint()
        if tube is not None:
            extra.append(tube)
        if extra:
            domain = SemialgebraicSet(
                domain.variables,
                inequalities=domain.inequalities + tuple(extra),
                equalities=domain.equalities,
                name=f"{domain.name}_offlock",
            )
        return self._with_mode_equalities(mode.name, domain)

    def _jump_domain(self, guard: SemialgebraicSet) -> SemialgebraicSet:
        domain = guard
        extra = self._compactness_constraints()
        if self.options.box_in_jumps and self.options.domain_boxes is not None \
                and self.options.compactness != "box":
            domain = domain.with_box(self.options.domain_boxes)
        if extra:
            domain = SemialgebraicSet(
                domain.variables,
                inequalities=domain.inequalities + tuple(extra),
                equalities=domain.equalities,
                name=f"{domain.name}_compact",
            )
        return domain

    # ------------------------------------------------------------------
    # Vector fields under parameter uncertainty
    # ------------------------------------------------------------------
    def _mode_fields(self, mode: Mode) -> List[Tuple[Tuple[Polynomial, ...], Optional[Dict]]]:
        """Vector fields to impose the decrease condition on.

        Vertex handling returns one state-only field per parameter-box corner;
        interval handling returns a single field over state+parameter
        variables (the caller then adds the parameter interval constraints).
        """
        if not self.system.parameter_variables or not mode.has_parameters:
            return [(mode.flow_map_with_parameters({}), None)]
        if self.options.parameter_handling == "vertex":
            fields = []
            for assignment in self.system.parameter_vertex_assignments():
                fields.append((mode.flow_map_with_parameters(assignment), assignment))
            return fields
        if self.options.parameter_handling == "interval":
            return [(mode.flow_map, {"symbolic": True})]
        raise CertificateError(
            f"unknown parameter handling {self.options.parameter_handling!r}"
        )

    # ------------------------------------------------------------------
    # Program construction
    # ------------------------------------------------------------------
    def build_program(self, cone: Optional[str] = None
                      ) -> Tuple[SOSProgram, Dict[str, ParametricPolynomial]]:
        options = self.options
        state_vars = self.system.state_variables
        if cone is None:
            # Direct callers get the most expressive rung of the configured
            # ladder ("auto" -> the full PSD program).
            cone = cone_for_relaxation(relaxation_ladder(options.relaxation)[-1])
        program = SOSProgram(name=f"lyapunov_{self.system.name}",
                             default_cone=cone, context=self.context)

        templates: Dict[str, ParametricPolynomial] = {}
        shared: Optional[ParametricPolynomial] = None
        for mode in self.system.modes:
            if options.common_certificate:
                if shared is None:
                    shared = program.new_polynomial_variable(
                        state_vars, options.certificate_degree, name="V", min_degree=2)
                templates[mode.name] = shared
            else:
                templates[mode.name] = program.new_polynomial_variable(
                    state_vars, options.certificate_degree, name=f"V_{mode.name}",
                    min_degree=2)

        # (a) positivity on each mode domain (V(0)=0 holds by construction since
        # the template has no constant/linear monomials).  With
        # ``positivity_global`` the stronger global condition is imposed, which
        # needs no S-procedure multipliers at all.
        for mode in self.system.modes:
            pos_domain = self._positivity_domain(mode)
            if pos_domain is None:
                margin = Polynomial.zero(state_vars)
                for v in state_vars:
                    xi = Polynomial.from_variable(v, state_vars)
                    margin = margin + xi * xi
                program.add_sos_constraint(
                    templates[mode.name] - margin * options.positivity_margin,
                    name=f"pos_{mode.name}",
                )
                if options.common_certificate:
                    break
            else:
                add_positivity_on_set(
                    program, templates[mode.name], pos_domain,
                    multiplier_degree=options.multiplier_degree,
                    name=f"pos_{mode.name}", strictness=options.positivity_margin,
                )

        # (b) Lie-derivative decrease on each mode domain for every parameter vertex
        # (or symbolically over the parameter box).
        for mode in self.system.modes:
            domain = self._decrease_domain(mode)
            for k, (field_polys, assignment) in enumerate(self._mode_fields(mode)):
                if assignment is not None and assignment.get("symbolic"):
                    # Parameters as indeterminates: extend variables and domain.
                    full_vars = state_vars.union(self.system.parameter_variables)
                    extended = SemialgebraicSet(
                        full_vars,
                        inequalities=tuple(
                            p.with_variables(full_vars) for p in domain.inequalities
                        ) + self.system.parameter_constraints(),
                        equalities=tuple(
                            p.with_variables(full_vars) for p in domain.equalities
                        ),
                        name=f"{domain.name}_params",
                    )
                    template = templates[mode.name].with_variables(full_vars)
                    lie = template.lie_derivative(
                        [f.with_variables(full_vars) for f in field_polys]
                        + [Polynomial.zero(full_vars)] * len(self.system.parameter_variables)
                    )
                    add_positivity_on_set(
                        program, -lie, extended,
                        multiplier_degree=options.multiplier_degree,
                        name=f"dec_{mode.name}_{k}",
                        strictness=options.decrease_margin,
                    )
                else:
                    lie = templates[mode.name].lie_derivative(list(field_polys))
                    add_positivity_on_set(
                        program, -lie, domain,
                        multiplier_degree=options.multiplier_degree,
                        name=f"dec_{mode.name}_{k}",
                        strictness=options.decrease_margin,
                    )

        # (c) non-increase across jumps: V_target(G(x)) <= V_source(x) on the guard.
        if not options.common_certificate:
            for transition in self.system.transitions:
                source = templates[transition.source]
                target = templates[transition.target]
                if transition.is_identity_reset:
                    target_after = target
                else:
                    reset = [r.with_variables(state_vars)
                             for r in transition.reset_polynomials()]
                    target_after = _compose_parametric(target, reset, state_vars)
                expr = source - target_after - options.jump_margin
                add_positivity_on_set(
                    program, expr, self._jump_domain(transition.guard_set),
                    multiplier_degree=options.multiplier_degree,
                    name=f"jump_{transition.name}",
                )

        return program, templates

    # ------------------------------------------------------------------
    # Fixed-certificate probes (the sweep planner's per-point query)
    # ------------------------------------------------------------------
    def decrease_probe_program(self, certificates: Mapping[str, Polynomial],
                               cone: Optional[str] = None,
                               name: Optional[str] = None) -> SOSProgram:
        """Feasibility program re-checking condition (b) for *fixed* certificates.

        The certificates are numeric polynomials (no decision variables); the
        only unknowns are the S-procedure multipliers, so the program is far
        smaller than :meth:`build_program` and — crucially for parameter
        sweeps — its conic data is affine in any model constant that enters
        the flow maps affinely.  Conditions (a) and (c) do not involve the
        dynamics at all, so a certificate synthesised at an anchor parameter
        point keeps satisfying them verbatim at every swept point; only the
        decrease condition must be re-established.
        """
        options = self.options
        if cone is None:
            cone = cone_for_relaxation(relaxation_ladder(options.relaxation)[-1])
        program = SOSProgram(name=name or f"decrease_probe_{self.system.name}",
                             default_cone=cone, context=self.context)
        state_vars = self.system.state_variables
        for mode in self.system.modes:
            certificate = certificates[mode.name].with_variables(state_vars)
            domain = self._decrease_domain(mode)
            for k, (field_polys, assignment) in enumerate(self._mode_fields(mode)):
                if assignment is not None and assignment.get("symbolic"):
                    raise CertificateError(
                        "decrease probes require vertex parameter handling")
                lie = certificate.lie_derivative(list(field_polys))
                add_positivity_on_set(
                    program, -lie, domain,
                    multiplier_degree=options.multiplier_degree,
                    name=f"probe_dec_{mode.name}_{k}",
                    strictness=options.decrease_margin,
                )
        return program

    def validate_certificate_decrease(self, certificates: Mapping[str, Polynomial],
                                      num_samples: Optional[int] = None
                                      ) -> List[object]:
        """Sampling-based decrease check of fixed certificates on every mode.

        The deterministic (seeded) companion of :meth:`decrease_probe_program`
        — a conic feasibility claim is only accepted once the extracted-level
        numeric check agrees, mirroring :meth:`_validate` without the
        positivity half (which is parameter-independent).
        """
        options = self.options
        samples = options.validate_samples if num_samples is None else num_samples
        if samples <= 0:
            return []
        bounds = options.domain_boxes
        if bounds is None:
            bounds = [(-1.0, 1.0)] * self.system.num_states
        state_vars = self.system.state_variables
        reports = []
        for mode in self.system.modes:
            certificate = certificates[mode.name].with_variables(state_vars)
            decrease_domain = self._decrease_domain(mode)
            for k, (field_polys, assignment) in enumerate(self._mode_fields(mode)):
                if assignment is not None and assignment.get("symbolic"):
                    field_polys = mode.flow_map_with_parameters(
                        self.system.nominal_parameters())
                reports.append(validate_decrease_along_field(
                    certificate, list(field_polys), decrease_domain, bounds,
                    num_samples=samples,
                    tolerance=options.validation_tolerance,
                    name=f"probe_decrease[{mode.name}#{k}]",
                ))
        return reports

    # ------------------------------------------------------------------
    def synthesize(self) -> LyapunovResult:
        """Solve the SOS program and validate the resulting certificates.

        Walks the relaxation ladder of ``options.relaxation`` (a single rung
        unless ``"auto"``): each rung lowers every Gram matrix to its cone,
        solves, and validates; a cheap rung is accepted only when the solve
        is feasible, the extracted Gram certificates are numerically sound
        *in the full PSD sense* (``SOSCertificate.is_numerically_sos`` on
        the reconstructed matrices) and the sampling validation passes —
        otherwise the search escalates.  The final rung is returned as-is,
        reproducing the classical behaviour for ``relaxation="sos"``.
        """
        start = time.perf_counter()
        ladder = relaxation_ladder(self.options.relaxation)
        result: Optional[LyapunovResult] = None
        for index, relaxation in enumerate(ladder):
            final = index == len(ladder) - 1
            result = self._synthesize_with(relaxation, start)
            if result.feasible and (final or self._certificates_sound(result)):
                if index > 0:
                    LOGGER.info("relaxation ladder settled on %s for %s",
                                relaxation, self.system.name)
                return result
            if not final:
                LOGGER.info("relaxation %s rejected for %s (%s); escalating",
                            relaxation, self.system.name, result.message)
        assert result is not None
        return result

    def _certificates_sound(self, result: LyapunovResult) -> bool:
        """Numerical soundness gate of the ``auto`` ladder's cheap rungs."""
        if result.solution is None or not result.solution.certificates:
            return False
        return all(cert.is_numerically_sos(
                       eig_tol=self.options.relaxation_eig_tol,
                       res_tol=self.options.relaxation_res_tol)
                   for cert in result.solution.certificates.values())

    def _synthesize_with(self, relaxation: str, start: float) -> LyapunovResult:
        """One synthesis attempt under a fixed Gram-cone relaxation."""
        program, templates = self.build_program(
            cone=cone_for_relaxation(relaxation))
        LOGGER.info("solving %s", program.describe())
        solution = program.solve(backend=self.options.solver_backend,
                                 **self.options.solver_settings)
        elapsed = time.perf_counter() - start

        # The SDP backends are first-order methods: a run that stops at the
        # iteration budget (or is suspected infeasible) may still carry a usable
        # approximate certificate.  The decision is therefore delegated to the
        # independent a-posteriori validation of the *extracted* polynomials —
        # which is the sound part of the tool chain — whenever the solver
        # produced a candidate point at all.
        usable = solution.solver_result.x is not None
        if not usable:
            return LyapunovResult(
                feasible=False, certificates={}, solution=solution,
                options=self.options, synthesis_time=elapsed,
                message=f"SOS program not solved: {solution.status.value}",
                relaxation=relaxation,
            )

        certificates: Dict[str, ModeCertificate] = {}
        for mode in self.system.modes:
            poly = solution.polynomial(templates[mode.name]).truncate(1e-12)
            certificates[mode.name] = ModeCertificate(
                mode_name=mode.name, certificate=poly, domain=self._mode_domain(mode))

        reports = self._validate(certificates)
        feasible = all(report.passed for report in reports) if reports else solution.is_success
        if feasible:
            message = "certificates synthesised and validated"
        elif solution.is_success:
            message = "solver returned certificates but sampling validation failed"
        else:
            message = (f"solver stopped with status {solution.status.value} and the "
                       "extracted candidate failed sampling validation")
        return LyapunovResult(
            feasible=feasible, certificates=certificates, solution=solution,
            options=self.options, synthesis_time=elapsed,
            validation_reports=reports, message=message,
            relaxation=relaxation,
        )

    # ------------------------------------------------------------------
    def _validate(self, certificates: Dict[str, ModeCertificate]) -> List[object]:
        """Sampling-based re-check of conditions (a) and (b) at parameter vertices."""
        options = self.options
        if options.validate_samples <= 0:
            return []
        bounds = options.domain_boxes
        if bounds is None:
            bounds = [(-1.0, 1.0)] * self.system.num_states
        reports = []
        for mode in self.system.modes:
            cert = certificates[mode.name]
            reports.append(validate_nonnegativity(
                cert.certificate, cert.domain, bounds,
                num_samples=options.validate_samples,
                tolerance=options.validation_tolerance,
                name=f"positivity[{mode.name}]",
            ))
            decrease_domain = self._decrease_domain(mode)
            for k, (field_polys, assignment) in enumerate(self._mode_fields(mode)):
                if assignment is not None and assignment.get("symbolic"):
                    field_polys = mode.flow_map_with_parameters(
                        self.system.nominal_parameters())
                reports.append(validate_decrease_along_field(
                    cert.certificate, list(field_polys), decrease_domain, bounds,
                    num_samples=options.validate_samples,
                    tolerance=options.validation_tolerance,
                    name=f"decrease[{mode.name}#{k}]",
                ))
        return reports


def _compose_parametric(template: ParametricPolynomial,
                        mapping: Sequence[Polynomial],
                        variables: VariableVector) -> ParametricPolynomial:
    """Compose a parametric polynomial with a numeric polynomial map."""
    result = ParametricPolynomial.zero(variables)
    for mono, coeff in template.coefficients.items():
        term = Polynomial.constant(variables, 1.0)
        for i, exp in enumerate(mono.exponents):
            if exp:
                term = term * (mapping[i] ** exp)
        result = result + ParametricPolynomial.from_polynomial(term) * coeff
    return result
