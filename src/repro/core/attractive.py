"""The attractive invariant set ``X1`` (Theorem 2 of the paper).

``X1`` is the union of the maximised Lyapunov sub-level sets,
``X1 = ∪_q {V_q <= c_q}``.  This module wraps that union with membership
tests, projections and sampling utilities used by the advection stage, the
figures and the validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..polynomial import Polynomial, VariableVector
from .levelset import MaximizedLevelSet


@dataclass
class AttractiveInvariant:
    """Union of maximised Lyapunov level sets (the paper's ``X_I`` / ``X1``)."""

    level_sets: Dict[str, MaximizedLevelSet]
    variables: VariableVector

    def __post_init__(self) -> None:
        if not self.level_sets:
            raise ValueError("an attractive invariant needs at least one level set")

    # ------------------------------------------------------------------
    @classmethod
    def from_maximization(cls, maximizer, certificates: Dict[str, Polynomial],
                          domains: Dict[str, "object"], variables: VariableVector,
                          bounds: Optional[Sequence[Tuple[float, float]]] = None,
                          ) -> "AttractiveInvariant":
        """Build the invariant by maximising every mode's level curve.

        ``maximizer`` is a :class:`~repro.core.levelset.LevelSetMaximizer`;
        with its default batched strategy each mode's Lemma-1 queries compile
        once and the level ladder is solved through the batched ADMM engine.
        """
        level_sets = maximizer.maximize_all(certificates, domains, bounds=bounds)
        return cls(level_sets=level_sets, variables=variables)

    # ------------------------------------------------------------------
    @property
    def mode_names(self) -> Tuple[str, ...]:
        return tuple(self.level_sets)

    def level_set(self, mode_name: str) -> MaximizedLevelSet:
        return self.level_sets[mode_name]

    def sublevel_polynomials(self) -> Dict[str, Polynomial]:
        """Per-mode polynomials whose 0-sub-level sets make up the union."""
        return {name: ls.sublevel_polynomial for name, ls in self.level_sets.items()}

    # ------------------------------------------------------------------
    def contains(self, state: Sequence[float], tolerance: float = 1e-9) -> bool:
        """Membership in the union."""
        return any(ls.contains(state, tolerance=tolerance)
                   for ls in self.level_sets.values())

    def membership_margin(self, state: Sequence[float]) -> float:
        """``min_q (V_q(x) - c_q)`` — negative inside the union, positive outside."""
        return min(ls.certificate.evaluate(state) - ls.level
                   for ls in self.level_sets.values())

    def membership_margins(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`membership_margin` for an ``(m, n)`` array of points."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        margins = np.full(points.shape[0], np.inf)
        for ls in self.level_sets.values():
            margins = np.minimum(
                margins, ls.certificate.evaluate_many(points) - ls.level)
        return margins

    def contains_points(self, points: np.ndarray, tolerance: float = 1e-9) -> np.ndarray:
        """Vectorised membership for an ``(m, n)`` array of points."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        inside = np.zeros(points.shape[0], dtype=bool)
        for ls in self.level_sets.values():
            inside |= ls.certificate.evaluate_many(points) <= ls.level + tolerance
        return inside

    def fraction_inside(self, points: np.ndarray) -> float:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[0] == 0:
            return float("nan")
        return float(self.contains_points(points).mean())

    # ------------------------------------------------------------------
    def is_invariant_along(self, trajectory: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Check forward invariance along a sampled trajectory.

        Once a sample is inside the union, every later sample must be inside
        as well (up to ``tolerance`` on the membership margin).
        """
        trajectory = np.atleast_2d(np.asarray(trajectory, dtype=float))
        inside = self.membership_margins(trajectory) <= tolerance
        if not inside.any():
            return True
        first_inside = int(np.argmax(inside))
        return bool(np.all(inside[first_inside:]))

    def certificate_nonincreasing_along(self, trajectory: np.ndarray,
                                        mode_name: str,
                                        tolerance: float = 1e-6) -> bool:
        """Check that one mode's certificate never increases along a trajectory."""
        trajectory = np.atleast_2d(np.asarray(trajectory, dtype=float))
        values = self.level_sets[mode_name].certificate.evaluate_many(trajectory)
        return bool(np.all(np.diff(values) <= tolerance))

    # ------------------------------------------------------------------
    def summary_rows(self) -> List[Tuple[str, float, int]]:
        """(mode, maximised level, certificate degree) rows for reports."""
        return [(name, ls.level, ls.certificate.degree)
                for name, ls in sorted(self.level_sets.items())]

    def describe(self) -> str:
        rows = ", ".join(f"{name}: c={ls.level:.4g} (deg {ls.certificate.degree})"
                         for name, ls in sorted(self.level_sets.items()))
        return f"AttractiveInvariant({rows})"
