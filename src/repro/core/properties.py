"""The two sub-properties whose conjunction is inevitability (§3 of the paper).

* **Property 1** — every trajectory starting in the compact set ``X1``
  converges to the equilibrium.  Established by the multiple Lyapunov
  certificates and their maximised level sets (Theorem 2).
* **Property 2** — every trajectory starting in ``X2 = (C ∪ D) \\ X1`` reaches
  ``X1`` in bounded time.  Established per mode by bounded advection and, for
  inconclusive sub-regions, escape certificates.

Because the SOS relaxation is sound but incomplete, each property carries a
three-valued status: verified, inconclusive (no certificate found) or failed
(a certificate was produced but did not survive independent validation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .advection import AdvectionResult
from .attractive import AttractiveInvariant
from .escape import EscapeCertificate
from .lyapunov import LyapunovResult


class VerificationStatus(enum.Enum):
    """Three-valued verdict of a (sub-)property."""

    VERIFIED = "verified"
    INCONCLUSIVE = "inconclusive"
    FAILED = "failed"

    @property
    def is_verified(self) -> bool:
        return self is VerificationStatus.VERIFIED

    def combine(self, other: "VerificationStatus") -> "VerificationStatus":
        """Conjunction: verified only if both are; failed dominates inconclusive."""
        if self is VerificationStatus.FAILED or other is VerificationStatus.FAILED:
            return VerificationStatus.FAILED
        if self is VerificationStatus.INCONCLUSIVE or other is VerificationStatus.INCONCLUSIVE:
            return VerificationStatus.INCONCLUSIVE
        return VerificationStatus.VERIFIED


@dataclass
class PropertyOneResult:
    """Attractivity inside ``X1`` (Theorem 2)."""

    status: VerificationStatus
    lyapunov: Optional[LyapunovResult]
    invariant: Optional[AttractiveInvariant]
    message: str = ""

    @property
    def verified(self) -> bool:
        return self.status.is_verified

    def level_rows(self) -> List[Tuple[str, float]]:
        if self.invariant is None:
            return []
        return [(name, level) for name, level, _ in self.invariant.summary_rows()]


@dataclass
class ModePropertyTwoResult:
    """Property-2 evidence for a single mode."""

    mode_name: str
    advection: Optional[AdvectionResult]
    escape: Optional[EscapeCertificate]
    status: VerificationStatus
    message: str = ""
    #: Relaxation whose Lemma-1 certificate settled the final set-inclusion
    #: re-check (``None`` when no inclusion certificate was found).
    relaxation: Optional[str] = None


@dataclass
class PropertyTwoResult:
    """Bounded reachability of ``X1`` from ``X2`` (Algorithm 1)."""

    status: VerificationStatus
    per_mode: Dict[str, ModePropertyTwoResult] = field(default_factory=dict)
    message: str = ""

    @property
    def verified(self) -> bool:
        return self.status.is_verified

    def modes_needing_escape(self) -> Tuple[str, ...]:
        return tuple(name for name, res in self.per_mode.items() if res.escape is not None)

    def advection_iterations(self) -> Dict[str, int]:
        return {name: res.advection.iterations_used
                for name, res in self.per_mode.items() if res.advection is not None}
