"""Polynomial sub-level-set operations based on Lemma 1 of the paper.

Lemma 1: for polynomials ``p1, p2`` and SOS multipliers ``s0, s1`` with
``s0 - s1 p1 + p2 = 0`` it holds that ``L(p1) ⊂ L(p2)`` where ``L(p)`` is the
0-sub-level set ``{x : p(x) <= 0}``.  Equivalently (the form used here):
``-p2 + s1 * p1`` being SOS certifies the inclusion, because ``p1(x) <= 0``
then forces ``p2(x) <= 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..polynomial import ParametricPolynomial, Polynomial
from ..sdp import SolveContext, SolverResult, normalize_gram_cone, solve_conic_problems
from ..sos import ParametricSOSProgram, SemialgebraicSet, SOSProgram
from ..utils import get_logger

LOGGER = get_logger("core.inclusion")


@dataclass
class InclusionCertificate:
    """Result of a Lemma-1 inclusion check ``{inner <= 0} ⊆ {outer <= 0}``.

    ``cone`` records the Gram-cone relaxation the certificate was searched
    in (a certificate found in a cheaper cone is still a valid SOS
    certificate, since DSOS ⊂ SDSOS ⊂ SOS; a *negative* answer from a
    cheaper cone is weaker and typically retried one rung up the ladder).
    """

    holds: bool
    multiplier: Optional[Polynomial]
    status: str
    inner: Polynomial
    outer: Polynomial
    warm_start_data: Optional[dict] = None
    cone: str = "psd"

    def __bool__(self) -> bool:
        return self.holds


def build_inclusion_program(
    inner: Polynomial,
    outer: Polynomial,
    multiplier_degree: int = 2,
    domain: Optional[SemialgebraicSet] = None,
    cone: str = "psd",
    context: Optional[SolveContext] = None,
    multiplier_support: str = "dense",
) -> Tuple[SOSProgram, ParametricPolynomial, Polynomial, Polynomial]:
    """Construct the Lemma-1 feasibility program for one inclusion query.

    Returns ``(program, lambda_template, inner_aligned, outer_aligned)``; the
    query is feasible iff ``λ·inner − outer`` (minus domain S-procedure
    terms) admits an SOS certificate with ``λ`` SOS.  ``cone`` selects the
    Gram-cone relaxation of every SOS constraint in the program (``"psd"``,
    ``"chordal"``, ``"sdd"`` or ``"dd"``); ``context`` the governing solve
    context.  ``multiplier_support`` shapes the multiplier templates:
    ``"dense"`` (every monomial up to ``multiplier_degree``, the default) or
    ``"diagonal"`` (``1, x_i^2, x_i^4, ...`` — a separable template that
    preserves the correlative sparsity of sparse certificates, so the
    ``"chordal"`` cone can actually split the product's Gram block; a dense
    multiplier fills the sparsity graph and collapses the decomposition to
    one clique).
    """
    if multiplier_support not in ("dense", "diagonal"):
        raise ValueError(
            f"unknown multiplier_support {multiplier_support!r}; "
            "expected 'dense' or 'diagonal'")
    diagonal = multiplier_support == "diagonal"
    variables = inner.variables.union(outer.variables)
    inner_v = inner.with_variables(variables)
    outer_v = outer.with_variables(variables)

    program = SOSProgram(name="sublevel_inclusion", default_cone=cone,
                         context=context)
    lam = program.new_sos_polynomial(variables, multiplier_degree,
                                     name="lambda", diagonal_only=diagonal)
    expr = lam * inner_v - outer_v
    if domain is not None:
        for k, constraint in enumerate(domain.inequalities):
            sigma = program.new_sos_polynomial(variables, multiplier_degree,
                                               name=f"dom{k}",
                                               diagonal_only=diagonal)
            expr = expr - sigma * constraint.with_variables(variables)
    program.add_sos_constraint(expr, name="inclusion")
    return program, lam, inner_v, outer_v


def check_sublevel_inclusion(
    inner: Polynomial,
    outer: Polynomial,
    multiplier_degree: int = 2,
    domain: Optional[SemialgebraicSet] = None,
    solver_backend: Optional[str] = None,
    warm_start: Optional[dict] = None,
    cone: str = "psd",
    context: Optional[SolveContext] = None,
    multiplier_support: str = "dense",
    **solver_settings,
) -> InclusionCertificate:
    """Certify ``{inner <= 0} ⊆ {outer <= 0}`` via Lemma 1.

    The optional ``domain`` restricts the claim to a semialgebraic set (its
    constraints enter through additional S-procedure multipliers), which keeps
    the certificate search feasible when the inclusion only holds locally.
    ``warm_start`` takes the ``warm_start_data`` of a previous structurally
    identical query (e.g. the neighbouring level of a bisection loop); the
    returned certificate carries this solve's data for the next query.  For
    families of queries differing only in a level parameter, use
    :class:`ParametricInclusionFamily` instead — it compiles the structure
    once and re-assembles each query as a sparse array operation.
    """
    program, lam, inner_v, outer_v = build_inclusion_program(
        inner, outer, multiplier_degree=multiplier_degree, domain=domain,
        cone=cone, context=context, multiplier_support=multiplier_support)
    solution = program.solve(backend=solver_backend, warm_start=warm_start,
                             **solver_settings)
    warm_data = solution.solver_result.info.get("warm_start_data")

    if not solution.is_success:
        return InclusionCertificate(holds=False, multiplier=None,
                                    status=solution.status.value,
                                    inner=inner_v, outer=outer_v,
                                    warm_start_data=warm_data,
                                    cone=program.default_cone)
    multiplier = solution.polynomial(lam)
    return InclusionCertificate(holds=True, multiplier=multiplier,
                                status=solution.status.value,
                                inner=inner_v, outer=outer_v,
                                warm_start_data=warm_data,
                                cone=program.default_cone)


class ParametricInclusionFamily:
    """The θ-family ``{certificate − θ <= 0} ⊆ {outer <= 0}``, compiled once.

    The level enters the Lemma-1 certificate affinely through
    ``λ·(certificate − θ)``, so the whole bisection/K-section ladder of a
    level-curve maximisation shares one compiled structure: after the initial
    :class:`~repro.sos.parametric.ParametricSOSProgram` compile, every probe
    is a :meth:`bind` (sparse re-assembly) plus a conic solve — typically
    batched across levels via :func:`repro.sdp.solve_conic_problems`.
    """

    def __init__(self, certificate: Polynomial, outer: Polynomial,
                 multiplier_degree: int = 2,
                 domain: Optional[SemialgebraicSet] = None,
                 probes: Tuple[float, float] = (0.0, 1.0),
                 check_affinity: bool = True,
                 cone: str = "psd",
                 context: Optional[SolveContext] = None,
                 multiplier_support: str = "dense"):
        self.certificate = certificate
        self.outer = outer
        self.cone = normalize_gram_cone(cone)
        self.context = context
        self.variables = certificate.variables.union(outer.variables)

        def build(theta: float):
            program, lam, _, _ = build_inclusion_program(
                certificate - theta, outer,
                multiplier_degree=multiplier_degree, domain=domain,
                cone=cone, context=context,
                multiplier_support=multiplier_support)
            return program, lam

        self.family = ParametricSOSProgram(build, probes=probes,
                                           check_affinity=check_affinity,
                                           name="inclusion_family",
                                           context=context)

    # ------------------------------------------------------------------
    def compile(self) -> "ParametricInclusionFamily":
        self.family.compile()
        return self

    def bind(self, level: float):
        """The conic problem of the query at ``level`` (no recompilation)."""
        return self.family.bind(level)

    def bind_many(self, levels: Sequence[float]) -> List[object]:
        return self.family.bind_many(levels)

    # ------------------------------------------------------------------
    def interpret(self, level: float, result: SolverResult,
                  extract_multiplier: bool = False) -> InclusionCertificate:
        """Wrap a solver result of a bound query as an :class:`InclusionCertificate`."""
        holds = result.status.is_success and result.x is not None
        multiplier = None
        if holds and extract_multiplier:
            solution = self.family.interpret(result)
            multiplier = solution.polynomial(self.family.payload)
        return InclusionCertificate(
            holds=holds,
            multiplier=multiplier,
            status=result.status.value,
            inner=(self.certificate - level).with_variables(self.variables),
            outer=self.outer.with_variables(self.variables),
            warm_start_data=result.info.get("warm_start_data"),
            cone=self.cone,
        )

    def check_levels(self, levels: Sequence[float],
                     solver_backend=None,
                     warm_starts: Optional[Sequence[Optional[dict]]] = None,
                     **solver_settings) -> List[InclusionCertificate]:
        """Solve the queries at ``levels`` as one batch (the fast path)."""
        problems = self.bind_many(levels)
        results = solve_conic_problems(problems, backend=solver_backend,
                                       warm_starts=warm_starts,
                                       context=self.context, **solver_settings)
        return [self.interpret(level, result)
                for level, result in zip(levels, results)]


def sample_inclusion_counterexample(
    inner: Polynomial,
    outer: Polynomial,
    bounds: Sequence[Tuple[float, float]],
    num_samples: int = 4000,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> Optional[np.ndarray]:
    """Search for a point with ``inner <= 0`` but ``outer > 0`` (falsification).

    Returns a counterexample point or ``None``.  Used to cross-check negative
    answers from :func:`check_sublevel_inclusion` (the SOS relaxation is sound
    but incomplete, so "no certificate" does not imply "no inclusion").
    """
    rng = np.random.default_rng(seed)
    lows = np.array([b[0] for b in bounds])
    highs = np.array([b[1] for b in bounds])
    variables = inner.variables.union(outer.variables)
    inner_v = inner.with_variables(variables)
    outer_v = outer.with_variables(variables)
    points = rng.uniform(lows, highs, size=(num_samples, len(bounds)))
    inner_vals = inner_v.evaluate_many(points)
    outer_vals = outer_v.evaluate_many(points)
    mask = (inner_vals <= tolerance) & (outer_vals > tolerance)
    if not np.any(mask):
        return None
    candidates = points[mask]
    worst = int(np.argmax(outer_v.evaluate_many(candidates)))
    return candidates[worst]


def sublevel_set_is_empty(poly: Polynomial, bounds: Sequence[Tuple[float, float]],
                          num_samples: int = 4000, seed: int = 0) -> bool:
    """Heuristic emptiness check of ``{poly <= 0}`` inside a box (by sampling)."""
    rng = np.random.default_rng(seed)
    lows = np.array([b[0] for b in bounds])
    highs = np.array([b[1] for b in bounds])
    points = rng.uniform(lows, highs, size=(num_samples, len(bounds)))
    return bool(np.all(poly.evaluate_many(points) > 0.0))
