"""Figure 5 — fourth-order advection with escape certificates for the
inconclusive sub-region.

The paper reports that fourth-order advection immerses the outer set only from
one direction and that the remaining (pink-shaded) sub-region is handled with
two escape certificates.  This bench regenerates that workflow: advect under
both pumping modes, report per-iteration extents, and (when advection stays
inconclusive) search an escape certificate for the leftover region.
"""


from repro.analysis import project_sublevel_set
from repro.core import (
    AdvectionOptions,
    EscapeCertificateSynthesizer,
    EscapeOptions,
    escape_region_from_advection,
    run_bounded_advection,
)
from repro.exceptions import CertificateError
from repro.pll import MODE_PUMP_DOWN, MODE_PUMP_UP

from conftest import invariant_or_fallback, print_rows


def test_bench_fig5_advection_fourth_order(benchmark, fourth_order_model,
                                           fourth_order_report):
    model = fourth_order_model
    invariant = invariant_or_fallback(fourth_order_report, model)
    outer = model.outer_set_polynomial()
    fields = model.nominal_fields()
    options = AdvectionOptions(time_step=0.05, max_iterations=7,
                               inclusion_check_every=2,
                               solver_settings=dict(max_iterations=3000))

    def run_both_modes():
        results = {}
        for mode_name in (MODE_PUMP_UP, MODE_PUMP_DOWN):
            results[mode_name] = run_bounded_advection(
                mode_name, outer, fields[mode_name], invariant,
                domain=model.mode_domain(mode_name), options=options)
        return results

    results = benchmark.pedantic(run_both_modes, rounds=1, iterations=1)

    rows = []
    escape_count = 0
    for mode_name, result in results.items():
        final = result.final_polynomial
        grid = project_sublevel_set(final, model.state_variables, ("v2", "e"),
                                    model.state_bounds(), resolution=31)
        x_min, x_max, y_min, y_max = grid.extent()
        status = "absorbed" if result.converged else "inconclusive"
        rows.append((mode_name, result.iterations_used, status,
                     f"[{x_min:.2f}, {x_max:.2f}]", f"[{y_min:.2f}, {y_max:.2f}]"))
        if not result.converged:
            own = invariant.level_sets.get(mode_name,
                                           next(iter(invariant.level_sets.values())))
            region = escape_region_from_advection(final, own.sublevel_polynomial,
                                                  region_box=model.region_box_set())
            synthesizer = EscapeCertificateSynthesizer(EscapeOptions(
                certificate_degree=2, validate_samples=400,
                solver_settings=dict(max_iterations=3000)))
            try:
                certificate = synthesizer.synthesize(mode_name, fields[mode_name],
                                                     region,
                                                     bounds=model.state_bounds())
                escape_count += 1
                rows.append((mode_name, "-", "escape certificate found",
                             f"deg {certificate.certificate.degree}",
                             f"validated={certificate.validation_passed}"))
            except CertificateError as exc:
                rows.append((mode_name, "-", "escape certificate not found",
                             str(exc)[:40], "-"))

    print_rows(
        "Figure 5: fourth-order advection (v2, e projections) + escape certificates",
        ["mode", "iterations", "status", "v2 extent / note", "e extent / note"],
        rows,
    )
    print(f"paper: 7 advection iterations, 2 escape certificates; "
          f"this run: escape certificates found = {escape_count}")
    assert all(result.iterations_used >= 1 for result in results.values())
