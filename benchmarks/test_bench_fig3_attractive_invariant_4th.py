"""Figure 3 — fourth-order attractive invariant projected onto (v2, v3) and (v2, e)."""

import pytest

from repro.analysis import project_union

from conftest import invariant_or_fallback, print_rows


@pytest.mark.parametrize("axes", [("v2", "v3"), ("v2", "e")])
def test_bench_fig3_projection(benchmark, fourth_order_model, fourth_order_report, axes):
    model = fourth_order_model
    invariant = invariant_or_fallback(fourth_order_report, model)
    sublevels = list(invariant.sublevel_polynomials().values())

    grid = benchmark.pedantic(
        project_union,
        args=(sublevels, model.state_variables, axes, model.state_bounds()),
        kwargs=dict(resolution=41, kind="slice"),
        rounds=1, iterations=1,
    )
    x_min, x_max, y_min, y_max = grid.extent()
    print_rows(
        f"Figure 3: attractive invariant projected onto {axes}",
        ["quantity", "value"],
        [("level sets in union", len(sublevels)),
         ("occupancy fraction", f"{grid.occupancy:.3f}"),
         (f"{axes[0]} extent", f"[{x_min:.2f}, {x_max:.2f}]"),
         (f"{axes[1]} extent", f"[{y_min:.2f}, {y_max:.2f}]")],
    )
    assert grid.occupancy > 0.0
    assert x_min <= 0.0 <= x_max
