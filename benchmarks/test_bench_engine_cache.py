"""Engine benchmark: cold vs warm certificate cache on a fast scenario.

Demonstrates (and asserts) the cache contract: the second run of an
unchanged scenario performs zero conic solves and is substantially faster.
"""

import time

import pytest

from repro.engine import EngineOptions, VerificationEngine

from conftest import print_rows


@pytest.mark.benchmark(group="engine-cache")
def test_bench_engine_warm_cache(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cache")
    scenario = "vanderpol"

    cold_start = time.perf_counter()
    cold = VerificationEngine(
        EngineOptions(jobs=1, cache_dir=cache_dir)).run([scenario])
    cold_seconds = time.perf_counter() - cold_start

    def warm_run():
        return VerificationEngine(
            EngineOptions(jobs=1, cache_dir=cache_dir)).run([scenario])

    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_seconds = warm.wall_seconds

    print_rows(
        "Engine certificate cache: cold vs warm (vanderpol)",
        ["quantity", "cold", "warm"],
        [("wall seconds", f"{cold_seconds:.2f}", f"{warm_seconds:.2f}"),
         ("SDP solves", cold.counters.get("solved", 0),
          warm.counters.get("solved", 0)),
         ("cache hits", cold.counters.get("cache_hit", 0),
          warm.counters.get("cache_hit", 0))],
    )

    assert cold.counters["solved"] > 0
    assert warm.counters["solved"] == 0
    assert warm.counters["cache_hit"] == cold.counters["solved"] + \
        cold.counters["cache_hit"]
    assert warm.outcome(scenario).statuses == cold.outcome(scenario).statuses
