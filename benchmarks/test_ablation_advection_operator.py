"""Ablation — advection operator: exact composition vs SOS projection.

Design decision 3 of DESIGN.md: for affine mode dynamics the composed Taylor
backward map keeps the polynomial degree fixed, so the cheap composition
operator is exact; the SOS-projected operator (the paper's program (6) shape)
pays one SOS solve per step for a fixed-degree representation.  This bench
measures one advection step of the third-order outer set under both operators.
"""

import pytest

from repro.core import AdvectionOptions, LevelSetAdvector
from repro.pll import MODE_PUMP_UP, build_third_order_model

from conftest import print_rows


@pytest.mark.parametrize("operator", ["composition", "sos_projection"])
def test_ablation_advection_operator(benchmark, operator):
    model = build_third_order_model(uncertainty="none")
    outer = model.outer_set_polynomial()
    field = model.nominal_fields()[MODE_PUMP_UP]
    domain = model.mode_domain(MODE_PUMP_UP)
    advector = LevelSetAdvector(AdvectionOptions(
        time_step=0.1, operator=operator,
        solver_settings=dict(max_iterations=8000, stall_window=8000, eps_rel=1e-4)))

    from repro.exceptions import CertificateError

    def one_step():
        try:
            return advector.advect(outer, field, domain=domain)
        except CertificateError as exc:
            return None, str(exc)

    advected, epsilon = benchmark(one_step)
    if advected is None:
        print_rows(
            f"Ablation: advection operator = {operator}",
            ["metric", "value"],
            [("outcome", "projection SOS solve did not certify"),
             ("detail", str(epsilon)[:60])],
        )
        return
    print_rows(
        f"Ablation: advection operator = {operator}",
        ["metric", "value"],
        [("advected polynomial degree", advected.degree),
         ("projection slack epsilon", f"{epsilon:.3e}"),
         ("origin inside advected set", advected.evaluate([0.0] * 3) < 0)],
    )
    assert advected.degree <= max(outer.degree, 2)
    assert advected.evaluate([0.0, 0.0, 0.0]) < 0
