"""Figure 2 — third-order attractive invariant projected onto (v1, v2) and (v2, e).

Projects the union of maximised Lyapunov level sets (the attractive invariant
X1) onto the two coordinate planes shown in Figure 2 of the paper and prints
the per-row spans of the occupied region (the numeric analogue of the plotted
level curves).
"""

import pytest

from repro.analysis import project_union

from conftest import invariant_or_fallback, print_rows


@pytest.mark.parametrize("axes", [("v1", "v2"), ("v2", "e")])
def test_bench_fig2_projection(benchmark, third_order_model, third_order_report, axes):
    model = third_order_model
    invariant = invariant_or_fallback(third_order_report, model)
    sublevels = list(invariant.sublevel_polynomials().values())

    grid = benchmark.pedantic(
        project_union,
        args=(sublevels, model.state_variables, axes, model.state_bounds()),
        kwargs=dict(resolution=41, kind="slice"),
        rounds=1, iterations=1,
    )
    x_min, x_max, y_min, y_max = grid.extent()
    print_rows(
        f"Figure 2: attractive invariant projected onto {axes}",
        ["quantity", "value"],
        [("level sets in union", len(sublevels)),
         ("occupancy fraction", f"{grid.occupancy:.3f}"),
         (f"{axes[0]} extent", f"[{x_min:.2f}, {x_max:.2f}]"),
         (f"{axes[1]} extent", f"[{y_min:.2f}, {y_max:.2f}]")],
    )
    rows = grid.row_summary()
    print_rows(f"Figure 2 data series ({axes[1]} vs {axes[0]} span)",
               [axes[1], f"{axes[0]}_min", f"{axes[0]}_max"],
               [(f"{y:.2f}", f"{lo:.2f}", f"{hi:.2f}") for y, lo, hi in rows[::4]])
    # The invariant is a nonempty neighbourhood of the locked equilibrium.
    assert grid.occupancy > 0.0
    assert x_min <= 0.0 <= x_max
    assert y_min <= 0.0 <= y_max
