"""Shared fixtures for the benchmark harness.

Each paper table/figure has a dedicated ``test_bench_*`` module.  The heavy
pipeline artefacts (Lyapunov certificates, attractive invariants, verification
reports) are computed once per session with *reduced budgets* — the goal is to
regenerate the shape of every table and figure on a laptop in minutes, not to
match the authors' absolute wall-clock numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

import pytest

from repro.core import (
    AdvectionOptions,
    AttractiveInvariant,
    EscapeOptions,
    InevitabilityOptions,
    InevitabilityVerifier,
    LevelSetOptions,
    LyapunovSynthesisOptions,
    LevelSetMaximizer,
)
from repro.pll import (
    RegionOfInterest,
    build_fourth_order_model,
    build_third_order_model,
)


def print_rows(title, header, rows):
    """Uniform table printing for every bench (captured with ``pytest -s``)."""
    print()
    print(f"=== {title} ===")
    print(" | ".join(header))
    for row in rows:
        print(" | ".join(str(item) for item in row))


# ---------------------------------------------------------------------------
# Machine-readable benchmark output: benches call ``record_bench`` and the
# session-finish hook writes everything to ``benchmarks/BENCH_table2.json`` so
# the performance trajectory is tracked across PRs (CI uploads the file as a
# build artifact).
# ---------------------------------------------------------------------------
BENCH_JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_table2.json")
_BENCH_RECORDS = {}


def record_bench(key, payload):
    """Register one benchmark record for the end-of-session JSON dump."""
    _BENCH_RECORDS[key] = payload


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH_RECORDS:
        return
    # Merge into any existing document so a partial session (e.g. a single
    # bench module under -k) refreshes its own records without clobbering the
    # rest of the trajectory file.
    records = {}
    try:
        with open(BENCH_JSON_PATH) as handle:
            previous = json.load(handle)
        if isinstance(previous.get("records"), dict):
            records.update(previous["records"])
    except (OSError, ValueError):
        pass
    records.update(_BENCH_RECORDS)
    document = {
        "schema": "bench-table2/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "records": records,
    }
    with open(BENCH_JSON_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n[bench] wrote {BENCH_JSON_PATH}")


def benchmark_lyapunov_options(**overrides):
    options = dict(
        certificate_degree=2,
        multiplier_degree=2,
        positivity_margin=0.05,
        lock_tube_radius=0.6,
        validate_samples=1500,
        validation_tolerance=5e-2,
        solver_settings=dict(max_iterations=8000, eps_rel=1e-5, eps_abs=1e-6),
    )
    options.update(overrides)
    return LyapunovSynthesisOptions(**options)


def benchmark_pipeline_options(**lyapunov_overrides):
    return InevitabilityOptions(
        lyapunov=benchmark_lyapunov_options(**lyapunov_overrides),
        levelset=LevelSetOptions(bisection_tolerance=0.05,
                                 max_bisection_iterations=10,
                                 initial_upper_bound=5.0,
                                 solver_settings=dict(max_iterations=4000)),
        advection=AdvectionOptions(time_step=1e-1, max_iterations=14,
                                   inclusion_check_every=2,
                                   solver_settings=dict(max_iterations=4000)),
        escape=EscapeOptions(certificate_degree=2, validate_samples=500,
                             solver_settings=dict(max_iterations=4000)),
    )


@pytest.fixture(scope="session")
def third_order_model():
    return build_third_order_model(
        region=RegionOfInterest(voltage_bound=4.0, phase_bound=2.0),
        uncertainty="pump",
    )


@pytest.fixture(scope="session")
def fourth_order_model():
    return build_fourth_order_model(
        region=RegionOfInterest(voltage_bound=2.0, phase_bound=1.0),
        uncertainty="pump",
    )


@pytest.fixture(scope="session")
def third_order_report(third_order_model):
    verifier = InevitabilityVerifier(third_order_model, benchmark_pipeline_options())
    return verifier.verify()


@pytest.fixture(scope="session")
def fourth_order_report(fourth_order_model):
    verifier = InevitabilityVerifier(
        fourth_order_model,
        benchmark_pipeline_options(lock_tube_radius=0.8),
    )
    return verifier.verify()


def invariant_or_fallback(report, model):
    """Use the pipeline's attractive invariant, or a fallback built from the
    synthesised (possibly only approximately validated) certificates so the
    figure benches always have level sets to project."""
    if report.property_one.invariant is not None:
        return report.property_one.invariant
    lyapunov = report.property_one.lyapunov
    if lyapunov is not None and lyapunov.certificates:
        certificates = {name: cert.certificate
                        for name, cert in lyapunov.certificates.items()}
        domains = {name: cert.domain for name, cert in lyapunov.certificates.items()}
        maximizer = LevelSetMaximizer(LevelSetOptions(
            bisection_tolerance=0.1, max_bisection_iterations=8,
            initial_upper_bound=5.0, solver_settings=dict(max_iterations=3000)))
        try:
            level_sets = maximizer.maximize_all(certificates, domains,
                                                bounds=model.state_bounds())
            return AttractiveInvariant(level_sets, model.state_variables)
        except Exception:  # pragma: no cover - fallback of the fallback below
            pass
    # Last resort: a small analytic ellipsoid so the projection code still runs.
    from repro.core.levelset import MaximizedLevelSet
    from repro.polynomial import Polynomial

    variables = model.state_variables
    V = Polynomial.zero(variables)
    for v in variables:
        xi = Polynomial.from_variable(v, variables)
        V = V + xi * xi
    level_sets = {"mode1": MaximizedLevelSet("mode1", V, 1.0, iterations=0)}
    return AttractiveInvariant(level_sets, variables)
