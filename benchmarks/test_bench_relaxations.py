"""Gram-cone relaxation benchmark on the pll3 level-set stage.

For every relaxation (DSOS -> LP cones, SDSOS -> 2x2 PSD pair blocks,
SOS -> one full PSD Gram block) the bench runs the self-consistent pipeline
slice — Lyapunov synthesis under the relaxation, then per-mode level-curve
maximisation under the same relaxation — and records compile+solve wall
time, the certified levels and success.

Two asserted claims:

* SDSOS certifies a positive level for every pll3 mode (it *succeeds*), and
* where it succeeds, the SDSOS cone layout's projection step — the
  per-iteration hot path of the ADMM backend — runs at least 2x faster than
  the full-PSD layout's stacked ``eigh``, thanks to the closed-form batched
  2x2 projection.

End-to-end wall time is recorded but deliberately *not* asserted: on Gram
orders this small (10-20) the KKT solve, not the eigendecomposition,
dominates an ADMM iteration, and the lifted SDD variables can slow
first-order convergence; the projection-step speedup is the robust,
hardware-meaningful win (and grows with the Gram order).  The results land
in ``benchmarks/BENCH_relaxations.json``.
"""

import json
import os
import platform
import sys
import time

import numpy as np
import pytest

from repro.core import LevelSetMaximizer, MultipleLyapunovSynthesizer
from repro.core.inclusion import ParametricInclusionFamily
from repro.core.inevitability import levelset_domain_for
from repro.exceptions import CertificateError
from repro.scenarios import build_problem
from repro.sdp import project_onto_cone_many

from conftest import print_rows

BENCH_JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_relaxations.json")

RELAXATIONS = ("dsos", "sdsos", "sos")


def _pll3_problem():
    problem = build_problem("pll3")
    problem.options.lyapunov.domain_boxes = problem.state_bounds()
    # Trim the ladder budget: the bench compares relaxations, it does not
    # need the production bisection depth.
    problem.options.levelset.max_bisection_iterations = 4
    problem.options.levelset.levels_per_round = 4
    return problem


def _run_stage(problem, relaxation):
    """One self-consistent pipeline slice under a fixed relaxation."""
    problem.options.apply_relaxation(relaxation)
    record = {"relaxation": relaxation}

    start = time.perf_counter()
    synthesizer = MultipleLyapunovSynthesizer(
        problem.system, options=problem.options.lyapunov)
    lyapunov = synthesizer.synthesize()
    record["lyapunov_seconds"] = time.perf_counter() - start
    record["lyapunov_feasible"] = bool(lyapunov.feasible)
    if not lyapunov.feasible:
        record["levelset_success"] = False
        record["levels"] = {}
        record["levelset_seconds"] = 0.0
        return record, None

    certificates = {name: cert.certificate
                    for name, cert in lyapunov.certificates.items()}
    domains = {name: levelset_domain_for(problem, problem.options, name)
               for name in certificates}
    start = time.perf_counter()
    try:
        maximizer = LevelSetMaximizer(problem.options.levelset)
        level_sets = maximizer.maximize_all(certificates, domains,
                                            bounds=problem.state_bounds())
        record["levelset_success"] = True
        record["levels"] = {name: level_set.level
                            for name, level_set in level_sets.items()}
    except CertificateError as exc:
        record["levelset_success"] = False
        record["levels"] = {}
        record["error"] = str(exc)
    record["levelset_seconds"] = time.perf_counter() - start
    return record, certificates


def _projection_sweep_seconds(dims, repeats=200, batch=8):
    points = np.random.default_rng(0).normal(size=(batch, dims.total))
    project_onto_cone_many(points, dims)  # warm the cached index tables
    start = time.perf_counter()
    for _ in range(repeats):
        project_onto_cone_many(points, dims)
    return (time.perf_counter() - start) / repeats


@pytest.mark.benchmark(group="relaxations")
def test_bench_relaxations_pll3_levelset(benchmark):
    problem = _pll3_problem()

    records = {}
    sos_certificates = None
    for relaxation in RELAXATIONS:
        record, certificates = _run_stage(problem, relaxation)
        records[relaxation] = record
        if relaxation == "sos":
            sos_certificates = certificates

    # Projection hot path: the actual cone layouts of one pll3 level-set
    # query, SDSOS pair blocks vs the full PSD Gram.
    assert sos_certificates is not None
    certificate = sos_certificates["mode2"]
    domain = levelset_domain_for(problem, problem.options, "mode2")
    constraint = domain.inequalities[0]
    projection = {}
    for relaxation, cone in (("sdsos", "sdd"), ("sos", "psd")):
        family = ParametricInclusionFamily(
            certificate, -constraint, multiplier_degree=2, cone=cone).compile()
        projection[relaxation] = _projection_sweep_seconds(family.family.dims)
    speedup = projection["sos"] / projection["sdsos"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for relaxation in RELAXATIONS:
        record = records[relaxation]
        levels = ", ".join(f"{name}={level:.3g}"
                           for name, level in sorted(record["levels"].items()))
        rows.append((relaxation,
                     f"{record['lyapunov_seconds']:.2f}",
                     "yes" if record["lyapunov_feasible"] else "no",
                     f"{record['levelset_seconds']:.2f}",
                     "yes" if record["levelset_success"] else "no",
                     levels or "-"))
    print_rows(
        "pll3 per-relaxation pipeline slice (Lyapunov + level-set stage)",
        ["relaxation", "lyap s", "lyap ok", "levelset s", "levelset ok", "levels"],
        rows,
    )
    print_rows(
        "level-set cone projection hot path (mode2 query layout)",
        ["layout", "projection sweep"],
        [("sdsos (2x2 pair blocks)", f"{projection['sdsos'] * 1e6:.1f} us"),
         ("sos (full PSD Gram)", f"{projection['sos'] * 1e6:.1f} us"),
         ("speedup", f"{speedup:.2f}x")],
    )

    document = {
        "schema": "bench-relaxations/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "scenario": "pll3",
        "stages": records,
        "projection": {
            "sdsos_seconds": projection["sdsos"],
            "sos_seconds": projection["sos"],
            "speedup": speedup,
        },
    }
    with open(BENCH_JSON_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n[bench] wrote {BENCH_JSON_PATH}")

    # DSOS is expected to fail on pll3 (that is what the auto ladder is
    # for); SDSOS and SOS must both deliver the invariant's level sets, and
    # where SDSOS succeeds its projection step must be at least 2x faster
    # than the full-PSD stacked eigh.
    assert records["sos"]["levelset_success"]
    assert records["sdsos"]["levelset_success"], \
        "SDSOS no longer certifies the pll3 level sets"
    assert speedup >= 2.0, \
        f"SDSOS projection speedup dropped to {speedup:.2f}x"
