"""Ablation — Lyapunov certificate degree (2 vs 4) on the third-order CP PLL.

The paper uses degree-6 (third order) and degree-4 (fourth order)
certificates; this ablation quantifies how the SDP size and synthesis time
grow with the certificate degree at a fixed reduced budget (DESIGN.md design
decision 2).
"""

import pytest

from repro.core import LyapunovSynthesisOptions, MultipleLyapunovSynthesizer
from repro.pll import RegionOfInterest, build_third_order_model

from conftest import print_rows


@pytest.mark.parametrize("degree", [2, 4])
def test_ablation_certificate_degree(benchmark, degree):
    model = build_third_order_model(
        region=RegionOfInterest(voltage_bound=3.0, phase_bound=1.5),
        uncertainty="none",
    )
    options = LyapunovSynthesisOptions(
        certificate_degree=degree,
        multiplier_degree=2,
        positivity_margin=0.05,
        lock_tube_radius=0.6,
        validate_samples=600,
        validation_tolerance=5e-2,
        solver_settings=dict(max_iterations=3000, eps_rel=1e-4, eps_abs=1e-5),
    )
    synthesizer = MultipleLyapunovSynthesizer(model.system, options,
                                              region_box=model.state_bounds())
    program, _ = synthesizer.build_program()

    result = benchmark.pedantic(synthesizer.synthesize, rounds=1, iterations=1)
    print_rows(
        f"Ablation: certificate degree = {degree}",
        ["metric", "value"],
        [("scalar decision variables", program.num_decision_variables),
         ("SOS constraints", program.num_sos_constraints),
         ("synthesis time (s)", f"{result.synthesis_time:.2f}"),
         ("solver status", result.solution.status.value if result.solution else "n/a"),
         ("sampling validation", "pass" if result.feasible else "violations remain")],
    )
    assert program.num_sos_constraints > 0
