"""Figure 4 — bounded advection of the outer set for the third-order CP PLL.

Regenerates the advection picture of Figure 4: the outer initial set is
advected step by step under the pumping-mode dynamics and the benches print
the per-iteration extent of the advected level set on the (v1, v2) and
(v2, e) planes, together with whether/when the set is absorbed by the
attractive invariant (Algorithm 1's stopping test).
"""


from repro.analysis import project_sublevel_set
from repro.core import AdvectionOptions, run_bounded_advection
from repro.pll import MODE_PUMP_UP

from conftest import invariant_or_fallback, print_rows


def test_bench_fig4_advection_third_order(benchmark, third_order_model,
                                          third_order_report):
    model = third_order_model
    invariant = invariant_or_fallback(third_order_report, model)
    outer = model.outer_set_polynomial()
    field = model.nominal_fields()[MODE_PUMP_UP]
    options = AdvectionOptions(time_step=0.1, max_iterations=14,
                               inclusion_check_every=2,
                               solver_settings=dict(max_iterations=3000))

    result = benchmark.pedantic(
        run_bounded_advection,
        args=(MODE_PUMP_UP, outer, field, invariant),
        kwargs=dict(domain=model.mode_domain(MODE_PUMP_UP), options=options),
        rounds=1, iterations=1,
    )

    rows = []
    for axes in (("v1", "v2"), ("v2", "e")):
        for iteration, poly in enumerate(result.polynomial_history()):
            grid = project_sublevel_set(poly, model.state_variables, axes,
                                        model.state_bounds(), resolution=31)
            x_min, x_max, y_min, y_max = grid.extent()
            rows.append((f"{axes}", iteration, f"[{x_min:.2f}, {x_max:.2f}]",
                         f"[{y_min:.2f}, {y_max:.2f}]"))
    print_rows(
        "Figure 4: third-order advection of the outer set (mode2 dynamics)",
        ["plane", "iteration", "x extent", "y extent"],
        rows,
    )
    print(f"advection iterations used: {result.iterations_used} "
          f"(paper: 14), absorbed: {result.converged} "
          f"by level set of {result.absorbing_mode}")
    assert result.iterations_used >= 1
    assert len(result.polynomial_history()) == result.iterations_used + 1
