"""Table 2 — computation time of the inevitability verification steps.

Runs the full verification pipeline (attractive invariant, level-curve
maximisation, bounded advection, set-inclusion checks, escape certificates)
for the third- and fourth-order CP PLL and prints the per-step wall-clock
breakdown, the analogue of Table 2 of the paper.  Absolute numbers differ from
the paper (pure-Python first-order solver, reduced certificate degrees); the
*shape* — attractive-invariant synthesis dominating, level-curve maximisation
and inclusion checks being comparatively cheap — is the reproduction target.
"""

import time

import pytest

from repro.core import (
    TABLE2_STEP_ORDER,
    LyapunovSynthesisOptions,
    MultipleLyapunovSynthesizer,
)
from repro.polynomial import Monomial
from repro.sdp import ConicProblemBuilder

from conftest import print_rows


def _rows_for(report):
    rows = dict((step, seconds) for step, seconds, _ in report.table2_rows())
    return [f"{rows[step]:.2f}" if step in rows else "-" for step in TABLE2_STEP_ORDER]


def test_bench_table2_third_order(benchmark, third_order_report):
    report = third_order_report
    benchmark.pedantic(lambda: report.table2_rows(), rounds=1, iterations=1)
    print_rows(
        "Table 2 (third order): verification step timings [s]",
        ["Step", "Time (s)", "Detail"],
        [(step, f"{seconds:.2f}", detail) for step, seconds, detail in report.table2_rows()],
    )
    print(f"P1={report.property_one.status.value}  "
          f"P2={report.property_two.status.value}  "
          f"inevitability={report.inevitability_status.value}  "
          f"total={report.total_time:.1f}s")
    assert report.timing_for("Attractive Invariant") > 0
    # Attractive-invariant synthesis dominates the budget, as in the paper.
    assert report.timing_for("Attractive Invariant") >= report.timing_for("Max. Level Curves")


def _lyapunov_program(model, degree):
    """The 4th-order PLL inevitability SOS program (program 1 of the paper)."""
    options = LyapunovSynthesisOptions(
        certificate_degree=degree, multiplier_degree=degree,
        positivity_margin=0.05, lock_tube_radius=0.8, validate_samples=0,
    )
    synthesizer = MultipleLyapunovSynthesizer(model.system, options,
                                              region_box=model.state_bounds())
    program, _ = synthesizer.build_program()
    return program


def _per_entry_compile(program):
    """The seed's per-Gram-entry compile loop, kept as the reference baseline
    the vectorized ``SOSProgram.compile`` is benchmarked against."""
    builder = ConicProblemBuilder()
    decision_order = program._decision_order()
    var_location = {}
    if decision_order:
        free_id, _ = builder.add_free_block(len(decision_order), name="decision")
        for local, dvar in enumerate(decision_order):
            var_location[dvar] = (free_id, local)
    sos_blocks = []
    for constraint in program._sos_constraints:
        block_id, _ = builder.add_psd_block(constraint.gram_order, name=constraint.name)
        sos_blocks.append((constraint, block_id))
    for constraint, block_id in sos_blocks:
        basis = constraint.basis
        expr = constraint.expression
        support = {}
        for i in range(len(basis)):
            for j in range(i, len(basis)):
                prod = basis[i] * basis[j]
                local, coeff = builder.psd_entry_local_index(block_id, i, j)
                weight = 1.0 if i == j else 2.0
                entry_map = support.setdefault(prod, {})
                key = (block_id, local)
                entry_map[key] = entry_map.get(key, 0.0) + weight * coeff
        all_monomials = set(support) | set(expr.coefficients)
        for mono in sorted(all_monomials, key=Monomial.sort_key):
            entries = dict(support.get(mono, {}))
            coeff_expr = expr.coefficient(mono)
            rhs = coeff_expr.constant
            for dvar, a in coeff_expr.coeffs.items():
                loc = var_location[dvar]
                entries[loc] = entries.get(loc, 0.0) - a
            if not entries:
                continue
            builder.add_equality_row(entries, rhs)
    return builder


def _best_seconds(fn, repeats=5):
    # Best-of-N is far less sensitive to CI runner noise than a mean/median.
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_table2_compile_solve_split(fourth_order_model):
    """Compile time vs solve time of the 4th-order inevitability SOS program.

    The vectorized compile must stay >= 3x faster than the seed's
    per-Gram-entry Python loop (reproduced above as the baseline, so the
    comparison is self-calibrating across machines).
    """
    model = fourth_order_model
    rows = []
    speedups = {}
    for degree in (2, 4):
        _lyapunov_program(model, degree).compile()  # warm the structural caches

        def vectorized():
            program = _lyapunov_program(model, degree)
            program.compile()[0].build()

        def per_entry():
            program = _lyapunov_program(model, degree)
            _per_entry_compile(program).build()

        fast = _best_seconds(vectorized)
        slow = _best_seconds(per_entry)
        # Subtract the shared program-construction cost so the ratio compares
        # the compile stages themselves.
        build_only = _best_seconds(lambda: _lyapunov_program(model, degree))
        compile_fast = max(fast - build_only, 1e-9)
        compile_slow = max(slow - build_only, 1e-9)
        speedups[degree] = compile_slow / compile_fast
        rows.append((f"deg {degree}", f"{compile_fast * 1e3:.2f}",
                     f"{compile_slow * 1e3:.2f}", f"{speedups[degree]:.1f}x"))
    print_rows(
        "Table 2 extension: SOS compile time, vectorized vs per-entry seed loop [ms]",
        ["Certificate", "Vectorized compile", "Per-entry compile", "Speedup"],
        rows,
    )

    # Solve-time split on the bench-budget (degree 2) program.
    program = _lyapunov_program(model, 2)
    solution = program.solve(max_iterations=3000, eps_rel=1e-5, eps_abs=1e-6)
    print_rows(
        "Table 2 extension: compile/solve split (degree 2) [s]",
        ["Stage", "Time (s)"],
        [("compile", f"{solution.compile_time:.4f}"),
         ("solve", f"{solution.solve_time:.4f}")],
    )
    assert solution.compile_time > 0.0 and solution.solve_time > 0.0
    assert speedups[4] >= 3.0, (
        f"vectorized compile only {speedups[4]:.1f}x faster than the per-entry loop"
    )


def test_bench_table2_fourth_order(benchmark, fourth_order_report):
    report = fourth_order_report
    benchmark.pedantic(lambda: report.table2_rows(), rounds=1, iterations=1)
    print_rows(
        "Table 2 (fourth order): verification step timings [s]",
        ["Step", "Time (s)", "Detail"],
        [(step, f"{seconds:.2f}", detail) for step, seconds, detail in report.table2_rows()],
    )
    print(f"P1={report.property_one.status.value}  "
          f"P2={report.property_two.status.value}  "
          f"inevitability={report.inevitability_status.value}  "
          f"total={report.total_time:.1f}s")
    assert report.timing_for("Attractive Invariant") > 0
