"""Table 2 — computation time of the inevitability verification steps.

Runs the full verification pipeline (attractive invariant, level-curve
maximisation, bounded advection, set-inclusion checks, escape certificates)
for the third- and fourth-order CP PLL and prints the per-step wall-clock
breakdown, the analogue of Table 2 of the paper.  Absolute numbers differ from
the paper (pure-Python first-order solver, reduced certificate degrees); the
*shape* — attractive-invariant synthesis dominating, level-curve maximisation
and inclusion checks being comparatively cheap — is the reproduction target.
"""

import time

import pytest

from repro.core import (
    TABLE2_STEP_ORDER,
    LevelSetMaximizer,
    LevelSetOptions,
    LyapunovSynthesisOptions,
    MultipleLyapunovSynthesizer,
)
from repro.exceptions import CertificateError
from repro.polynomial import Monomial
from repro.sdp import ConicProblemBuilder

from conftest import print_rows, record_bench


def _rows_for(report):
    rows = dict((step, seconds) for step, seconds, _, _ in report.table2_rows())
    return [f"{rows[step]:.2f}" if step in rows else "-" for step in TABLE2_STEP_ORDER]


def test_bench_table2_third_order(benchmark, third_order_report):
    report = third_order_report
    benchmark.pedantic(lambda: report.table2_rows(), rounds=1, iterations=1)
    record_bench("table2_third_order", {
        "steps": [{"step": step, "seconds": seconds, "detail": detail}
                  for step, seconds, detail, _ in report.table2_rows()],
        "total_seconds": report.total_time,
    })
    print_rows(
        "Table 2 (third order): verification step timings [s]",
        ["Step", "Time (s)", "Detail"],
        [(step, f"{seconds:.2f}", detail) for step, seconds, detail, _ in report.table2_rows()],
    )
    print(f"P1={report.property_one.status.value}  "
          f"P2={report.property_two.status.value}  "
          f"inevitability={report.inevitability_status.value}  "
          f"total={report.total_time:.1f}s")
    assert report.timing_for("Attractive Invariant") > 0
    # Attractive-invariant synthesis dominates the budget, as in the paper.
    assert report.timing_for("Attractive Invariant") >= report.timing_for("Max. Level Curves")


def _lyapunov_program(model, degree):
    """The 4th-order PLL inevitability SOS program (program 1 of the paper)."""
    options = LyapunovSynthesisOptions(
        certificate_degree=degree, multiplier_degree=degree,
        positivity_margin=0.05, lock_tube_radius=0.8, validate_samples=0,
    )
    synthesizer = MultipleLyapunovSynthesizer(model.system, options,
                                              region_box=model.state_bounds())
    program, _ = synthesizer.build_program()
    return program


def _per_entry_compile(program):
    """The seed's per-Gram-entry compile loop, kept as the reference baseline
    the vectorized ``SOSProgram.compile`` is benchmarked against."""
    builder = ConicProblemBuilder()
    decision_order = program._decision_order()
    var_location = {}
    if decision_order:
        free_id, _ = builder.add_free_block(len(decision_order), name="decision")
        for local, dvar in enumerate(decision_order):
            var_location[dvar] = (free_id, local)
    sos_blocks = []
    for constraint in program._sos_constraints:
        block_id, _ = builder.add_psd_block(constraint.gram_order, name=constraint.name)
        sos_blocks.append((constraint, block_id))
    for constraint, block_id in sos_blocks:
        basis = constraint.basis
        expr = constraint.expression
        support = {}
        for i in range(len(basis)):
            for j in range(i, len(basis)):
                prod = basis[i] * basis[j]
                local, coeff = builder.psd_entry_local_index(block_id, i, j)
                weight = 1.0 if i == j else 2.0
                entry_map = support.setdefault(prod, {})
                key = (block_id, local)
                entry_map[key] = entry_map.get(key, 0.0) + weight * coeff
        all_monomials = set(support) | set(expr.coefficients)
        for mono in sorted(all_monomials, key=Monomial.sort_key):
            entries = dict(support.get(mono, {}))
            coeff_expr = expr.coefficient(mono)
            rhs = coeff_expr.constant
            for dvar, a in coeff_expr.coeffs.items():
                loc = var_location[dvar]
                entries[loc] = entries.get(loc, 0.0) - a
            if not entries:
                continue
            builder.add_equality_row(entries, rhs)
    return builder


def _best_seconds(fn, repeats=5):
    # Best-of-N is far less sensitive to CI runner noise than a mean/median.
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_table2_compile_solve_split(fourth_order_model):
    """Compile time vs solve time of the 4th-order inevitability SOS program.

    The vectorized compile must stay >= 3x faster than the seed's
    per-Gram-entry Python loop (reproduced above as the baseline, so the
    comparison is self-calibrating across machines).
    """
    model = fourth_order_model
    rows = []
    speedups = {}
    for degree in (2, 4):
        _lyapunov_program(model, degree).compile()  # warm the structural caches

        def vectorized():
            program = _lyapunov_program(model, degree)
            program.compile()[0].build()

        def per_entry():
            program = _lyapunov_program(model, degree)
            _per_entry_compile(program).build()

        fast = _best_seconds(vectorized)
        slow = _best_seconds(per_entry)
        # Subtract the shared program-construction cost so the ratio compares
        # the compile stages themselves.
        build_only = _best_seconds(lambda: _lyapunov_program(model, degree))
        compile_fast = max(fast - build_only, 1e-9)
        compile_slow = max(slow - build_only, 1e-9)
        speedups[degree] = compile_slow / compile_fast
        rows.append((f"deg {degree}", f"{compile_fast * 1e3:.2f}",
                     f"{compile_slow * 1e3:.2f}", f"{speedups[degree]:.1f}x"))
    print_rows(
        "Table 2 extension: SOS compile time, vectorized vs per-entry seed loop [ms]",
        ["Certificate", "Vectorized compile", "Per-entry compile", "Speedup"],
        rows,
    )

    # Solve-time split on the bench-budget (degree 2) program.
    program = _lyapunov_program(model, 2)
    solution = program.solve(max_iterations=3000, eps_rel=1e-5, eps_abs=1e-6)
    print_rows(
        "Table 2 extension: compile/solve split (degree 2) [s]",
        ["Stage", "Time (s)"],
        [("compile", f"{solution.compile_time:.4f}"),
         ("solve", f"{solution.solve_time:.4f}")],
    )
    assert solution.compile_time > 0.0 and solution.solve_time > 0.0
    record_bench("compile_solve_split", {
        "per_degree_speedup": {str(d): s for d, s in speedups.items()},
        "degree2_compile_seconds": solution.compile_time,
        "degree2_solve_seconds": solution.solve_time,
    })
    assert speedups[4] >= 3.0, (
        f"vectorized compile only {speedups[4]:.1f}x faster than the per-entry loop"
    )


def test_bench_table2_levelset_batched_vs_serial(third_order_report, third_order_model):
    """Parametric+batched level-curve maximisation vs the serial per-level path.

    The baseline is the seed's per-level path: a fresh Lemma-1 program is
    constructed, compiled and solved for every probe, with rejections paying
    the full stall window (``infeasibility_detection=False`` reproduces the
    seed solver's economics).  The batched engine compiles each inclusion
    family once (``bind`` re-assembles the conic data per level), probes K
    levels per round through the batched ADMM solver with plateau-based
    infeasibility detection, and must be >= 3x faster end-to-end with
    certified levels matching within the bisection tolerance.
    """
    lyapunov = third_order_report.property_one.lyapunov
    if lyapunov is None or not lyapunov.certificates:
        pytest.skip("no Lyapunov certificates synthesised at benchmark budget")
    certificates = {name: cert.certificate
                    for name, cert in lyapunov.certificates.items()}
    domains = {name: cert.domain for name, cert in lyapunov.certificates.items()}
    bounds = third_order_model.state_bounds()

    tolerance = 0.05
    common = dict(bisection_tolerance=tolerance, max_bisection_iterations=10,
                  initial_upper_bound=5.0)
    serial_options = LevelSetOptions(
        strategy="serial",
        solver_settings=dict(max_iterations=4000, infeasibility_detection=False),
        **common)
    batched_options = LevelSetOptions(
        strategy="batched", solver_settings=dict(max_iterations=4000), **common)

    def run(options):
        maximizer = LevelSetMaximizer(options)
        levels, elapsed = {}, {}
        for name in certificates:
            start = time.perf_counter()
            try:
                levels[name] = maximizer.maximize(
                    name, certificates[name], domains[name], bounds=bounds).level
            except CertificateError:
                levels[name] = None
            elapsed[name] = time.perf_counter() - start
        return levels, elapsed

    serial_levels, serial_times = run(serial_options)
    batched_levels, batched_times = run(batched_options)

    total_serial = sum(serial_times.values())
    total_batched = sum(batched_times.values())
    speedup = total_serial / max(total_batched, 1e-9)
    rows = []
    for name in certificates:
        fmt = lambda level: "-" if level is None else f"{level:.4f}"
        rows.append((name, fmt(serial_levels[name]), f"{serial_times[name]:.2f}",
                     fmt(batched_levels[name]), f"{batched_times[name]:.2f}"))
    print_rows(
        "Table 2 extension: level-set maximisation, serial per-level vs batched [s]",
        ["Mode", "Serial level", "Serial time", "Batched level", "Batched time"],
        rows + [("total", "", f"{total_serial:.2f}", "", f"{total_batched:.2f}")],
    )
    record_bench("levelset_batched_vs_serial", {
        "serial_seconds": total_serial,
        "batched_seconds": total_batched,
        "speedup": speedup,
        "modes": {name: {"serial_level": serial_levels[name],
                         "batched_level": batched_levels[name],
                         "serial_seconds": serial_times[name],
                         "batched_seconds": batched_times[name]}
                  for name in certificates},
    })

    for name in certificates:
        serial_level = serial_levels[name]
        batched_level = batched_levels[name]
        assert (serial_level is None) == (batched_level is None), (
            f"{name}: serial and batched paths disagree about certifiability")
        if serial_level is not None:
            assert abs(serial_level - batched_level) <= tolerance + 1e-9, (
                f"{name}: levels diverge beyond the bisection tolerance "
                f"({serial_level:.4f} vs {batched_level:.4f})")
    assert speedup >= 3.0, (
        f"batched level-set maximisation only {speedup:.2f}x faster than the "
        f"serial per-level path")


def _levelset_ksection_binds(count):
    """A level-set K-section ladder: ≥64 simultaneous θ binds of one family.

    ``{V <= θ} ⊆ {V <= 4}`` holds iff θ <= 4, so a ladder spanning the
    threshold mixes quick feasible rungs, slow borderline rungs and
    plateau-detected infeasible rungs — the convergence-time spread the
    asynchronous compaction schedule exists for.  The DSOS (LP-cone)
    relaxation keeps the per-iteration core small so the schedule overhead,
    not the cone projection, is what the two modes differ in.
    """
    from repro.core.inclusion import ParametricInclusionFamily
    from repro.polynomial import Polynomial, VariableVector, make_variables

    x, y, z = make_variables("x", "y", "z")
    xv = VariableVector([x, y, z])
    px, py, pz = (Polynomial.from_variable(v, xv) for v in (x, y, z))
    V = px * px + 0.5 * py * py + 0.8 * pz * pz + 0.3 * px * py - 0.2 * py * pz
    family = ParametricInclusionFamily(V, V - 4.0, multiplier_degree=2,
                                       cone="dd")
    family.compile()
    import numpy as np

    third = count // 3
    levels = np.concatenate([
        np.linspace(0.05, 3.0, third),
        4.0 - np.geomspace(0.9, 0.01, third),
        np.linspace(4.2, 8.0, count - 2 * third),
    ])
    return family.bind_many(levels)


def test_bench_table2_backend_matrix():
    """Per-array-backend iterations/sec of the batched level-set K-section.

    160 simultaneous θ binds solved by ``BatchADMMSolver`` under every array
    backend importable in this process (NumPy always; CuPy/torch rows appear
    only where the adapters resolve), in both the masked synchronous schedule
    and the asynchronous bounded-staleness schedule.  Statuses must agree
    mode-for-mode, and on the NumPy path the async compaction schedule must
    deliver >= 1.5x the synchronous iteration throughput.
    """
    from repro.sdp import ADMMSettings, BatchADMMSolver, available_array_backends

    problems = _levelset_ksection_binds(160)
    staleness = 50
    section = {"binds": len(problems), "staleness_bound": staleness}
    rows = []
    for backend_name in available_array_backends():
        entry = {}
        statuses = {}
        for mode in ("sync", "async"):
            settings = ADMMSettings(max_iterations=6000,
                                    array_backend=backend_name,
                                    async_mode=(mode == "async"),
                                    staleness_bound=staleness)
            solver = BatchADMMSolver(settings)
            best_wall = best_ips = None
            for _ in range(2):  # best-of-2 damps runner noise
                start = time.perf_counter()
                results = solver.solve_batch(problems)
                wall = time.perf_counter() - start
                if best_wall is None or wall < best_wall:
                    best_wall = wall
                    best_ips = results[0].info["batch_iterations_per_second"]
            statuses[mode] = [r.status.value for r in results]
            entry[f"wall_seconds_{mode}"] = best_wall
            entry[f"iterations_per_second_{mode}"] = best_ips
        entry["async_speedup"] = (entry["iterations_per_second_async"]
                                  / entry["iterations_per_second_sync"])
        section[backend_name] = entry
        rows.append((backend_name,
                     f"{entry['iterations_per_second_sync']:.0f}",
                     f"{entry['iterations_per_second_async']:.0f}",
                     f"{entry['wall_seconds_sync']:.2f}",
                     f"{entry['wall_seconds_async']:.2f}",
                     f"{entry['async_speedup']:.2f}x"))
        assert statuses["async"] == statuses["sync"], (
            f"{backend_name}: async and sync schedules disagree on statuses")
    record_bench("backends", section)
    print_rows(
        "Table 2 extension: level-set K-section (160 binds) per array backend",
        ["Backend", "Sync it/s", "Async it/s", "Sync wall", "Async wall",
         "Async speedup"],
        rows,
    )
    numpy_speedup = section["numpy"]["async_speedup"]
    assert numpy_speedup >= 1.5, (
        f"async compaction only {numpy_speedup:.2f}x the masked synchronous "
        f"batch on the NumPy backend")


def test_bench_table2_fourth_order(benchmark, fourth_order_report):
    report = fourth_order_report
    benchmark.pedantic(lambda: report.table2_rows(), rounds=1, iterations=1)
    record_bench("table2_fourth_order", {
        "steps": [{"step": step, "seconds": seconds, "detail": detail}
                  for step, seconds, detail, _ in report.table2_rows()],
        "total_seconds": report.total_time,
    })
    print_rows(
        "Table 2 (fourth order): verification step timings [s]",
        ["Step", "Time (s)", "Detail"],
        [(step, f"{seconds:.2f}", detail) for step, seconds, detail, _ in report.table2_rows()],
    )
    print(f"P1={report.property_one.status.value}  "
          f"P2={report.property_two.status.value}  "
          f"inevitability={report.inevitability_status.value}  "
          f"total={report.total_time:.1f}s")
    assert report.timing_for("Attractive Invariant") > 0
