"""Table 2 — computation time of the inevitability verification steps.

Runs the full verification pipeline (attractive invariant, level-curve
maximisation, bounded advection, set-inclusion checks, escape certificates)
for the third- and fourth-order CP PLL and prints the per-step wall-clock
breakdown, the analogue of Table 2 of the paper.  Absolute numbers differ from
the paper (pure-Python first-order solver, reduced certificate degrees); the
*shape* — attractive-invariant synthesis dominating, level-curve maximisation
and inclusion checks being comparatively cheap — is the reproduction target.
"""

import pytest

from repro.core import TABLE2_STEP_ORDER

from conftest import print_rows


def _rows_for(report):
    rows = dict((step, seconds) for step, seconds, _ in report.table2_rows())
    return [f"{rows[step]:.2f}" if step in rows else "-" for step in TABLE2_STEP_ORDER]


def test_bench_table2_third_order(benchmark, third_order_report):
    report = third_order_report
    benchmark.pedantic(lambda: report.table2_rows(), rounds=1, iterations=1)
    print_rows(
        "Table 2 (third order): verification step timings [s]",
        ["Step", "Time (s)", "Detail"],
        [(step, f"{seconds:.2f}", detail) for step, seconds, detail in report.table2_rows()],
    )
    print(f"P1={report.property_one.status.value}  "
          f"P2={report.property_two.status.value}  "
          f"inevitability={report.inevitability_status.value}  "
          f"total={report.total_time:.1f}s")
    assert report.timing_for("Attractive Invariant") > 0
    # Attractive-invariant synthesis dominates the budget, as in the paper.
    assert report.timing_for("Attractive Invariant") >= report.timing_for("Max. Level Curves")


def test_bench_table2_fourth_order(benchmark, fourth_order_report):
    report = fourth_order_report
    benchmark.pedantic(lambda: report.table2_rows(), rounds=1, iterations=1)
    print_rows(
        "Table 2 (fourth order): verification step timings [s]",
        ["Step", "Time (s)", "Detail"],
        [(step, f"{seconds:.2f}", detail) for step, seconds, detail in report.table2_rows()],
    )
    print(f"P1={report.property_one.status.value}  "
          f"P2={report.property_two.status.value}  "
          f"inevitability={report.inevitability_status.value}  "
          f"total={report.total_time:.1f}s")
    assert report.timing_for("Attractive Invariant") > 0
