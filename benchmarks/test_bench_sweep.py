"""Sweep-planner benchmark: compiles-per-family and points/sec at scale.

The sweep subsystem's performance claim is structural: certifying a family
of N parameter points costs **one** SOS compile per (rung, shard) structure
— the :class:`~repro.sos.parametric.MultiParametricSOSProgram` probe family
— plus a pure array bind per point, instead of N full compiles.  This bench
drives the claim at paper scale: a 200-point charge-pump degradation ladder
(``Ip ∈ [0.2, 1.0]·nominal`` of the third-order PLL, the continuum
generalisation of the ``pll3_weak_pump`` scenario) swept end to end through
:class:`~repro.sweep.SweepRunner` with ``jobs=1`` (a single shard, so the
compile bound is exactly 1 per rung).

Recorded in ``benchmarks/BENCH_sweep.json``:

* ``parametric_compiles`` / ``binds`` / ``rebuild_compiles`` per rung
  structure (asserted: ≤ 1 parametric compile, 0 rebuilds, one bind per
  sampling-passing point);
* ``points_per_second`` over the full ladder (sampling validation included
  — degraded points are filtered before any conic work, which is exactly
  the designed fast path);
* the certified frontier edge on the Ip axis (the sweep's scientific
  output: down to which pump-current fraction the nominal certificate
  survives).

Budget note: the anchor Lyapunov synthesis runs against a cold cache inside
the bench's tmp dir so the run is hermetic; it is reported separately from
the per-point throughput.
"""

import json
import os
import platform
import sys
import time

import pytest

from repro.sweep import SweepOptions, SweepRunner, get_sweep_family

BENCH_JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_sweep.json")

FAMILY = "pll3_ip_ladder"
POINTS = 200


@pytest.mark.benchmark(group="sweep")
def test_bench_sweep_degradation_ladder(benchmark, tmp_path):
    family = get_sweep_family(FAMILY).reconfigure(samples=POINTS)
    assert family.count() == POINTS

    runner = SweepRunner(SweepOptions(jobs=1, cache_dir=str(tmp_path)))
    start = time.perf_counter()
    report = runner.run(family)
    wall = time.perf_counter() - start

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    run = report.run
    anchor_seconds = run["anchor"]["seconds"]
    sweep_seconds = max(wall - anchor_seconds, 1e-9)
    points_per_second = POINTS / sweep_seconds

    structures = run["structures"]
    total_parametric = sum(entry.get("parametric_compiles", 0)
                           for entry in structures.values())
    total_rebuilds = sum(entry.get("rebuild_compiles", 0)
                         for entry in structures.values())
    certified = report.certified
    ip_range = report.frontier["axes"]["i_p"]["certified_range"]
    nominal = ip_range[1] if ip_range else None
    frontier_fraction = (ip_range[0] / nominal) if ip_range else None

    print(f"\n=== {FAMILY} x {POINTS} points (jobs=1, single shard) ===")
    print(f"anchor synthesis   : {anchor_seconds:.2f}s "
          f"({run['anchor']['relaxation']})")
    print(f"sweep wall         : {sweep_seconds:.2f}s "
          f"({points_per_second:.1f} points/s)")
    print(f"certified          : {certified}/{POINTS}"
          + (f", Ip frontier at {frontier_fraction:.3f} of nominal"
             if frontier_fraction is not None else ""))
    for rung in sorted(structures):
        entry = structures[rung]
        print(f"structure[{rung}]     : "
              f"{entry.get('parametric_compiles', 0)} parametric compile(s), "
              f"{entry.get('binds', 0)} bind(s), "
              f"{entry.get('rebuild_compiles', 0)} rebuild(s)")
    print(f"SDP solves         : {run['counters'].get('solved', 0)} "
          f"({run['counters'].get('cache_hit', 0)} cache hits)")

    document = {
        "schema": "bench-sweep/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "family": FAMILY,
        "points": POINTS,
        "jobs": 1,
        "anchor_seconds": anchor_seconds,
        "sweep_seconds": sweep_seconds,
        "points_per_second": points_per_second,
        "certified_points": certified,
        "ip_frontier_fraction": frontier_fraction,
        "structures": structures,
        "compiles_per_family": total_parametric,
        "solves": run["counters"].get("solved", 0),
        "cache": run["cache"],
    }
    with open(BENCH_JSON_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n[bench] wrote {BENCH_JSON_PATH}")

    # The structural claim: one shard pays at most one parametric compile
    # per rung structure and never falls back to per-point rebuilds on the
    # (affine-in-Ip) probe family.
    assert len(structures) >= 1
    for rung, entry in structures.items():
        assert entry.get("parametric_compiles", 0) <= 1, \
            f"rung {rung} recompiled its structure"
        assert entry.get("rebuild_compiles", 0) == 0, \
            f"rung {rung} fell back to per-point rebuilds"
    assert total_rebuilds == 0
    # Every sampling-passing point bound (not compiled) its conic data, and
    # the certified region is the upper end of the ladder (healthy pump).
    assert certified >= 1
    assert report.frontier["summary"]["points"] == POINTS
