"""Table 1 — CP PLL parameters used in the experimentation.

Regenerates the parameter rows of Table 1 (third- and fourth-order columns)
from :class:`repro.pll.PLLParameters` and benchmarks model construction from
those parameters (the cheapest stage of the tool chain, reported for
completeness of the harness).
"""


from repro.pll import PLLParameters, build_fourth_order_model, build_third_order_model

from conftest import print_rows


def _merged_table():
    third = dict(PLLParameters.third_order_paper().table_rows())
    fourth = dict(PLLParameters.fourth_order_paper().table_rows())
    names = ["C1", "C2", "C3", "R", "R2", "f_ref", "K0", "Ip", "N"]
    rows = []
    for name in names:
        rows.append((name, third.get(name, "-"), fourth.get(name, "-")))
    return rows


def test_bench_table1_parameter_rows(benchmark):
    rows = benchmark(_merged_table)
    print_rows("Table 1: PLL parameters used in the experimentation",
               ["Parameter", "Third Order", "Fourth Order"], rows)
    assert len(rows) == 9
    assert rows[0][1].startswith("[1.98")
    assert rows[-1][2].startswith("[495")


def test_bench_table1_model_construction(benchmark):
    def build_both():
        third = build_third_order_model()
        fourth = build_fourth_order_model()
        return third, fourth

    third, fourth = benchmark(build_both)
    print_rows(
        "Table 1 (derived): normalised rate constants",
        ["constant", "third order", "fourth order"],
        [(name, f"{third.rate_constants.get(name, float('nan')):.4g}",
          f"{fourth.rate_constants.get(name, float('nan')):.4g}")
         for name in sorted(set(third.rate_constants) | set(fourth.rate_constants))],
    )
    assert third.parameters.is_averaged_model_stable()
    assert fourth.parameters.is_averaged_model_stable()
