"""Chordal Gram decomposition benchmark on the pll4 degree-4 level-set stage.

One level-curve inclusion query of the fourth-order PLL — ``{V <= theta}
subset of {outer <= 0}`` with a degree-4 certificate — compiles to a Gram
program whose big block has order 35 (all degree-<=3 monomials in the four
states).  The bench runs the same query twice, once with the monolithic PSD
Gram and once with the chordal cone that splits the block along the cliques
of its correlative-sparsity graph, and records:

* the per-iteration cone projection time (the ADMM hot path: one stacked
  ``eigh`` of order 35 vs a handful of clique-sized ones), and
* the end-to-end level bisection (compile + bind + solve ladder), with the
  certified levels of both cones — the chordal decomposition is *exact* on
  chordally-sparse programs (Grone/Agler), so the levels must agree.

Two ingredients make the decomposition non-trivial, and both are recorded in
the JSON so the bench is honest about its setting:

* the certificate is a *structured sparse* degree-4 template following the
  pll4 coupling chain ``v1 - v2 - v3 - e`` (synthesised certificates are
  numerically dense, which collapses every term-sparsity method — chordal
  decomposition is a sparsity-exploiting technique and is benched on the
  sparse-certificate regime it targets), and
* the S-procedure multiplier uses the ``"diagonal"`` support
  (``1, x_i^2, ...``): a dense multiplier template fills the correlative
  graph and merges every clique back into one block.

Asserted claims: the chordal projection step is at least 2x faster than the
monolithic PSD projection on this stage, and the certified level matches the
monolithic optimum.  Results land in ``benchmarks/BENCH_chordal.json``.
"""

import json
import os
import platform
import sys
import time

import numpy as np
import pytest

from repro.core.inclusion import ParametricInclusionFamily
from repro.core.inevitability import levelset_domain_for
from repro.polynomial import Polynomial
from repro.scenarios import build_problem
from repro.sdp import project_onto_cone_many, solve_conic_problem

from conftest import print_rows

BENCH_JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_chordal.json")

SCENARIO = "pll4_deg4"
BISECTION_ITERATIONS = 8
LEVEL_RANGE = (0.0, 4.0)


def _chain_certificate(problem):
    """Structured sparse degree-4 certificate on the pll4 coupling chain.

    Per-state quadratic + quartic wells plus nearest-neighbour couplings
    along ``v1 - v2 - v3 - e`` — the sparsity pattern the PLL's loop-filter
    topology induces, and the regime where a term-sparsity method has
    structure to exploit.
    """
    variables = problem.system.state_variables
    polys = [Polynomial.from_variable(v, variables) for v in variables]
    v1, v2, v3, e = polys
    certificate = (v1 * v1 + v2 * v2 + v3 * v3 + e * e) * 1.0
    certificate = certificate + (v1 * v1 * v1 * v1 + v2 * v2 * v2 * v2
                                 + v3 * v3 * v3 * v3 + e * e * e * e) * 0.1
    certificate = certificate + (v1 * v2 + v2 * v3 + v3 * e) * 0.2
    certificate = certificate + (v1 * v1 * v2 * v2 + v2 * v2 * v3 * v3
                                 + v3 * v3 * e * e) * 0.05
    return certificate


def _projection_sweep_seconds(dims, repeats=60, batch=32, passes=5):
    """Min-of-passes mean projection time (robust to scheduler noise).

    ``batch=32`` matches the batched-ADMM regime (many levels advancing in
    one iteration loop), where the stacked eigh dominates the per-call
    bookkeeping and timing is stable.
    """
    points = np.random.default_rng(0).normal(size=(batch, dims.total))
    project_onto_cone_many(points, dims)  # warm the cached index tables
    means = []
    for _ in range(passes):
        start = time.perf_counter()
        for _ in range(repeats):
            project_onto_cone_many(points, dims)
        means.append((time.perf_counter() - start) / repeats)
    return float(min(means))


def _run_cone(certificate, outer, cone):
    """Compile the level family under ``cone`` and bisect the level."""
    record = {"cone": cone}
    start = time.perf_counter()
    family = ParametricInclusionFamily(
        certificate, outer, multiplier_degree=2, cone=cone,
        multiplier_support="diagonal").compile()
    record["compile_seconds"] = time.perf_counter() - start

    problem = family.bind(0.5 * sum(LEVEL_RANGE))
    record["psd_dims"] = list(problem.dims.psd)
    record["layout_kind"] = problem.layout_kind

    low, high = LEVEL_RANGE
    solves = 0
    start = time.perf_counter()
    for _ in range(BISECTION_ITERATIONS):
        level = 0.5 * (low + high)
        result = solve_conic_problem(family.bind(level), max_iterations=20000)
        solves += 1
        if result.status.is_success:
            low = level
        else:
            high = level
    record["bisection_seconds"] = time.perf_counter() - start
    record["solves"] = solves
    record["certified_level"] = low
    record["projection_seconds"] = _projection_sweep_seconds(problem.dims)
    return record


@pytest.mark.benchmark(group="chordal")
def test_bench_chordal_pll4_levelset(benchmark):
    problem = build_problem(SCENARIO)
    certificate = _chain_certificate(problem)
    domain = levelset_domain_for(problem, problem.options, "mode2")
    outer = -domain.inequalities[0]

    records = {cone: _run_cone(certificate, outer, cone)
               for cone in ("psd", "chordal")}
    speedup = (records["psd"]["projection_seconds"]
               / records["chordal"]["projection_seconds"])
    level_gap = abs(records["psd"]["certified_level"]
                    - records["chordal"]["certified_level"])

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for cone in ("psd", "chordal"):
        record = records[cone]
        rows.append((cone,
                     "x".join(str(k) for k in record["psd_dims"]),
                     f"{record['compile_seconds']:.2f}",
                     f"{record['bisection_seconds']:.2f}",
                     f"{record['certified_level']:.3f}",
                     f"{record['projection_seconds'] * 1e6:.1f} us"))
    print_rows(
        f"{SCENARIO} degree-4 level-set stage: chordal vs monolithic PSD",
        ["cone", "psd blocks", "compile s", "bisect s", "level", "projection"],
        rows,
    )
    print_rows(
        "projection hot path",
        ["quantity", "value"],
        [("speedup (psd / chordal)", f"{speedup:.2f}x"),
         ("certified level gap", f"{level_gap:.4f}")],
    )

    document = {
        "schema": "bench-chordal/v1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "scenario": SCENARIO,
        "certificate": "structured sparse degree-4 chain template",
        "multiplier_support": "diagonal",
        "bisection_iterations": BISECTION_ITERATIONS,
        "cones": records,
        "projection_speedup": speedup,
        "certified_level_gap": level_gap,
    }
    with open(BENCH_JSON_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n[bench] wrote {BENCH_JSON_PATH}")

    # The chordal lowering must actually decompose the order-35 Gram block
    # (a dense pattern would collapse back to one clique) ...
    chordal_blocks = records["chordal"]["psd_dims"]
    assert max(chordal_blocks) < 35, \
        f"chordal decomposition collapsed to {chordal_blocks}"
    assert records["chordal"]["layout_kind"] == "chordal"
    # ... the decomposition is exact, so both cones certify the same level
    # (within one bisection-resolution step) ...
    resolution = (LEVEL_RANGE[1] - LEVEL_RANGE[0]) / 2 ** BISECTION_ITERATIONS
    assert records["psd"]["certified_level"] > 0.0
    assert records["chordal"]["certified_level"] > 0.0
    assert level_gap <= 2 * resolution + 1e-9, \
        f"chordal/psd certified levels diverge by {level_gap:.4f}"
    # ... and the clique-sized projection step — the per-iteration ADMM hot
    # path — beats the monolithic order-35 stacked eigh by at least 2x.
    assert speedup >= 2.0, \
        f"chordal projection speedup dropped to {speedup:.2f}x"
