"""Ablation — SDP backend: ADMM splitting vs alternating projections.

Compares the two conic backends on a representative SOS feasibility problem
(a Lyapunov certificate for a stable polynomial system), as called out in
DESIGN.md design decision 1.
"""

import pytest

from repro.polynomial import Polynomial, VariableVector, make_variables
from repro.sos import SemialgebraicSet, SOSProgram, add_positivity_on_set, ball_constraint

from conftest import print_rows


def _lyapunov_program():
    x, y = make_variables("x", "y")
    xv = VariableVector([x, y])
    px = Polynomial.from_variable(x, xv)
    py = Polynomial.from_variable(y, xv)
    field = [-px + py, -px - py ** 3]
    domain = SemialgebraicSet(xv, inequalities=(ball_constraint(xv, 2.0),))
    program = SOSProgram("ablation_backend")
    V = program.new_polynomial_variable(xv, 2, name="V", min_degree=2)
    add_positivity_on_set(program, V, domain, strictness=0.05)
    add_positivity_on_set(program, -V.lie_derivative(field), domain)
    return program


@pytest.mark.parametrize("backend", ["admm", "projection"])
def test_ablation_solver_backend(benchmark, backend):
    def solve():
        return _lyapunov_program().solve(backend=backend)

    solution = benchmark(solve)
    print_rows(
        f"Ablation: solver backend = {backend}",
        ["metric", "value"],
        [("status", solution.status.value),
         ("iterations", solution.solver_result.iterations),
         ("equality residual", f"{solution.solver_result.equality_residual:.2e}"),
         ("solve time (s)", f"{solution.solve_time:.3f}")],
    )
    # The ADMM backend must certify this feasibility problem; the alternating-
    # projection baseline is allowed to time out (that gap is the ablation's finding).
    if backend == "admm":
        assert solution.is_success
    else:
        assert solution.solver_result.iterations > 0
